open Pf_util

type t =
  | Uniform
  | Dyn_count
  | Custom of (string * int) list

let where = "multi.weighting"

(* Uniform weighting equalizes the programs' total dynamic weight by
   scaling each with an integer multiplier ~ budget / dyn_insns.  The
   budget is large enough that the relative quantization error is at most
   one part in (budget / dyn_insns) >= ~100 for any benchmark the suite
   can simulate, while scaled counts stay far below the 63-bit range. *)
let uniform_budget = 1_000_000_000

let multiplier t ~name ~dyn_insns =
  match t with
  | Dyn_count -> 1
  | Uniform -> max 1 (uniform_budget / max 1 dyn_insns)
  | Custom ws -> (
      match List.assoc_opt name ws with
      | Some w when w >= 1 -> w
      | Some w ->
          Sim_error.raisef Sim_error.Invalid_config ~where
            "weight for program %S must be >= 1 (got %d)" name w
      | None ->
          Sim_error.raisef Sim_error.Invalid_config ~where
            "no weight supplied for program %S" name)

let validate t ~names =
  match t with
  | Uniform | Dyn_count -> ()
  | Custom ws ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (n, w) ->
          if Hashtbl.mem seen n then
            Sim_error.raisef Sim_error.Invalid_config ~where
              "duplicate weight for program %S" n;
          Hashtbl.add seen n ();
          if w < 1 then
            Sim_error.raisef Sim_error.Invalid_config ~where
              "weight for program %S must be >= 1 (got %d)" n w;
          if not (List.mem n names) then
            Sim_error.raisef Sim_error.Invalid_config ~where
              "weight names unknown program %S (suite: %s)" n
              (String.concat ", " names))
        ws;
      List.iter
        (fun n ->
          if not (List.mem_assoc n ws) then
            Sim_error.raisef Sim_error.Invalid_config ~where
              "no weight supplied for program %S" n)
        names

let to_string = function
  | Uniform -> "uniform"
  | Dyn_count -> "dynamic"
  | Custom ws ->
      String.concat ","
        (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) ws)

let of_string s =
  match s with
  | "uniform" -> Ok Uniform
  | "dynamic" | "dyn" -> Ok Dyn_count
  | s -> (
      let parts = String.split_on_char ',' s in
      let parse_one part =
        match String.index_opt part '=' with
        | Some i when i > 0 && i < String.length part - 1 -> (
            let name = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            match int_of_string_opt v with
            | Some w -> Ok (name, w)
            | None -> Error (Printf.sprintf "bad weight %S in %S" v part))
        | Some _ | None ->
            Error
              (Printf.sprintf
                 "bad weight entry %S (expected name=INT, or one of \
                  uniform/dynamic)"
                 part)
      in
      let rec go acc = function
        | [] -> Ok (Custom (List.rev acc))
        | p :: tl -> (
            match parse_one p with
            | Ok kv -> go (kv :: acc) tl
            | Error e -> Error e)
      in
      go [] parts)
