(** Per-program weighting schemes for multi-program ISA synthesis.

    A deployed programmable-decoder core ships one ISA for a whole
    workload suite; how much each program's dynamic behaviour should
    steer the shared synthesis is a policy choice.  Every scheme reduces
    to an {e integer multiplier} applied to a program's dynamic counts
    before profiles/sites are merged — integer scaling keeps the merge
    exact, so suite synthesis stays bit-deterministic. *)

type t =
  | Uniform
      (** every program counts equally: multipliers normalize each
          program's total dynamic weight to a common budget, so a long
          benchmark cannot drown out a short one *)
  | Dyn_count
      (** raw dynamic-instruction counts (multiplier 1): programs weigh
          in proportion to how many instructions they execute *)
  | Custom of (string * int) list
      (** user-supplied positive integer weight per program name *)

val multiplier : t -> name:string -> dyn_insns:int -> int
(** The integer dynamic-count multiplier for one program.  [dyn_insns] is
    the program's total dynamic instruction count (used by [Uniform]).
    @raise Pf_util.Sim_error.Error for a [Custom] scheme missing the name
    or carrying a weight < 1. *)

val validate : t -> names:string list -> unit
(** Check a scheme against the suite's program names: [Custom] must name
    every program exactly once with a positive weight and must not name
    programs outside the suite.
    @raise Pf_util.Sim_error.Error ([Invalid_config]) otherwise. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse a CLI spelling: ["uniform"], ["dynamic"] (or ["dyn"]), or a
    custom list ["name=W,name=W,..."]. *)
