module Params = struct
  type t = {
    k_access : float;
    k_output : float;
    k_refill_per_bit : float;
    k_internal_per_gate : float;
    k_leakage_per_gate : float;
    peak_window_insns : int;
  }

  (* Calibration (see mli): with a 16 KB 32-way cache (~151 k gate
     equivalents), ~0.8 accesses/cycle and ~15 toggles/access, switching
     is ~33 %, internal ~55 % and leakage ~12 % of ARM16 I-cache power,
     matching Figure 6(a).  Switching is dominated by the per-access
     precharge/output-drive term [k_access], so halving fetch accesses
     (FITS) halves it, while same-width ARM8 saves almost nothing —
     the Figure 7 contrast. *)
  let default =
    {
      k_access = 34.0;
      k_output = 0.30;
      k_refill_per_bit = 3.0;
      k_internal_per_gate = 3.4e-4;
      k_leakage_per_gate = 7.5e-5;
      peak_window_insns = 32;
    }

  (* One read probes [assoc] ways of [block_bytes] each: every bitline in
     the probed ways is precharged and sensed, so the fixed per-access
     energy scales with assoc * block-bits.  The reference organization is
     the paper's 32-way, 32 B-block cache (8192 read bits), where the
     scale is exactly 1.0 — both paper points (16 K and 8 K share ways and
     block size) therefore see [default] unchanged, which is what lets the
     DSE grid reproduce the ARM16/ARM8/FITS16/FITS8 numbers bit-for-bit.
     Size enters only through [gate_count] (internal and leakage terms),
     which [create] already reads from the geometry; the per-toggle and
     per-refill-bit coefficients are per-bit quantities and stay fixed. *)
  let ref_read_bits = 32 * 32 * 8

  let for_geometry ?(base = default) (g : Geometry.t) =
    let read_bits = g.Geometry.assoc * g.Geometry.block_bytes * 8 in
    let scale = float_of_int read_bits /. float_of_int ref_read_bits in
    { base with k_access = base.k_access *. scale }
end

(* Accounting is pure integer event counting; every energy is a closed-form
   function of the counters, evaluated on demand.  This is what lets the
   single-pass DSE kernel (Pf_dse.Sweep) reproduce a replay's floats
   bit-for-bit: both paths count the same integers and then evaluate the
   same expressions below, so there is no dependence on the order in which
   per-access energies were accumulated.  Peak-power windows close every
   [peak_window_insns] retired instructions — an instruction-aligned
   boundary that falls at the same event index for every cache geometry
   (a cycle-aligned boundary would not: cycle counts are geometry-
   dependent). *)

let[@inline always] switching_energy (p : Params.t) ~accesses ~toggles ~refill_words =
  (p.Params.k_access *. float_of_int accesses)
  +. (p.Params.k_output *. float_of_int toggles)
  +. (p.Params.k_refill_per_bit *. float_of_int (refill_words * 32))

let[@inline always] internal_per_cycle (p : Params.t) (g : Geometry.t) =
  p.Params.k_internal_per_gate *. float_of_int g.Geometry.gate_count

let[@inline always] leakage_per_cycle (p : Params.t) (g : Geometry.t) =
  p.Params.k_leakage_per_gate *. float_of_int g.Geometry.gate_count

let[@inline always] window_power (p : Params.t) (g : Geometry.t) ~accesses ~toggles
    ~refill_words ~cycles =
  (switching_energy p ~accesses ~toggles ~refill_words
  /. float_of_int cycles)
  +. internal_per_cycle p g +. leakage_per_cycle p g

type t = {
  params : Params.t;
  geometry : Geometry.t;
  mutable accesses : int;
  mutable toggles : int;
  mutable refill_words : int;
  mutable cycles : int;
  mutable insns : int;
  (* open peak window *)
  mutable w_accesses : int;
  mutable w_toggles : int;
  mutable w_refill_words : int;
  mutable w_cycles : int;
  mutable w_insns : int;
  mutable peak : float;
}

let create ?(params = Params.default) geometry =
  {
    params;
    geometry;
    accesses = 0;
    toggles = 0;
    refill_words = 0;
    cycles = 0;
    insns = 0;
    w_accesses = 0;
    w_toggles = 0;
    w_refill_words = 0;
    w_cycles = 0;
    w_insns = 0;
    peak = 0.0;
  }

let on_access t ~toggles ~refilled_words =
  t.accesses <- t.accesses + 1;
  t.toggles <- t.toggles + toggles;
  t.refill_words <- t.refill_words + refilled_words;
  t.w_accesses <- t.w_accesses + 1;
  t.w_toggles <- t.w_toggles + toggles;
  t.w_refill_words <- t.w_refill_words + refilled_words

let on_cycles t n =
  t.cycles <- t.cycles + n;
  t.w_cycles <- t.w_cycles + n

let close_window t =
  (* an all-paired (zero-cycle) window has no power sample *)
  if t.w_cycles > 0 then begin
    let p =
      window_power t.params t.geometry ~accesses:t.w_accesses
        ~toggles:t.w_toggles ~refill_words:t.w_refill_words
        ~cycles:t.w_cycles
    in
    if p > t.peak then t.peak <- p
  end;
  t.w_accesses <- 0;
  t.w_toggles <- 0;
  t.w_refill_words <- 0;
  t.w_cycles <- 0;
  t.w_insns <- 0

let on_retire t =
  t.insns <- t.insns + 1;
  t.w_insns <- t.w_insns + 1;
  if t.w_insns >= t.params.Params.peak_window_insns then close_window t

let window_room t = t.params.Params.peak_window_insns - t.w_insns

(* Batched accounting for [insns] retired instructions whose summed
   activity is [accesses]/[toggles]/[refilled_words]/[cycles].  Exactness
   hinges on the peak windows: a window closes at a retire boundary, and
   contributions within one window are order-free (the sample is a
   function of the window sums), so a batch is bit-identical to the
   per-instruction call sequence iff no close falls strictly inside it —
   the caller must keep [insns <= window_room].  Equivalent to [insns]
   interleaved on_access/on_cycles/on_retire calls. *)
let on_block t ~accesses ~toggles ~refilled_words ~cycles ~insns =
  t.accesses <- t.accesses + accesses;
  t.toggles <- t.toggles + toggles;
  t.refill_words <- t.refill_words + refilled_words;
  t.cycles <- t.cycles + cycles;
  t.insns <- t.insns + insns;
  t.w_accesses <- t.w_accesses + accesses;
  t.w_toggles <- t.w_toggles + toggles;
  t.w_refill_words <- t.w_refill_words + refilled_words;
  t.w_cycles <- t.w_cycles + cycles;
  t.w_insns <- t.w_insns + insns;
  if t.w_insns >= t.params.Params.peak_window_insns then close_window t

type report = {
  switching : float;
  internal : float;
  leakage : float;
  total : float;
  peak_power : float;
  cycles : int;
}

let report_of_counts ?(params = Params.default) geometry ~accesses ~toggles
    ~refill_words ~cycles ~peak =
  let switching = switching_energy params ~accesses ~toggles ~refill_words in
  let internal = internal_per_cycle params geometry *. float_of_int cycles in
  let leakage = leakage_per_cycle params geometry *. float_of_int cycles in
  {
    switching;
    internal;
    leakage;
    total = switching +. internal +. leakage;
    peak_power = peak;
    cycles;
  }

let report t =
  (* fold the open window into the peak without closing it: reporting is
     read-only, so mid-stream reports compose *)
  let peak =
    if t.w_cycles > 0 then begin
      let p =
        window_power t.params t.geometry ~accesses:t.w_accesses
          ~toggles:t.w_toggles ~refill_words:t.w_refill_words
          ~cycles:t.w_cycles
      in
      if p > t.peak then p else t.peak
    end
    else t.peak
  in
  report_of_counts ~params:t.params t.geometry ~accesses:t.accesses
    ~toggles:t.toggles ~refill_words:t.refill_words ~cycles:t.cycles ~peak

let avg_power r = if r.cycles = 0 then 0.0 else r.total /. float_of_int r.cycles
