module Params = struct
  type t = {
    k_access : float;
    k_output : float;
    k_refill_per_bit : float;
    k_internal_per_gate : float;
    k_leakage_per_gate : float;
    peak_window_cycles : int;
  }

  (* Calibration (see mli): with a 16 KB 32-way cache (~151 k gate
     equivalents), ~0.8 accesses/cycle and ~15 toggles/access, switching
     is ~33 %, internal ~55 % and leakage ~12 % of ARM16 I-cache power,
     matching Figure 6(a).  Switching is dominated by the per-access
     precharge/output-drive term [k_access], so halving fetch accesses
     (FITS) halves it, while same-width ARM8 saves almost nothing —
     the Figure 7 contrast. *)
  let default =
    {
      k_access = 34.0;
      k_output = 0.30;
      k_refill_per_bit = 3.0;
      k_internal_per_gate = 3.4e-4;
      k_leakage_per_gate = 7.5e-5;
      peak_window_cycles = 32;
    }

  (* One read probes [assoc] ways of [block_bytes] each: every bitline in
     the probed ways is precharged and sensed, so the fixed per-access
     energy scales with assoc * block-bits.  The reference organization is
     the paper's 32-way, 32 B-block cache (8192 read bits), where the
     scale is exactly 1.0 — both paper points (16 K and 8 K share ways and
     block size) therefore see [default] unchanged, which is what lets the
     DSE grid reproduce the ARM16/ARM8/FITS16/FITS8 numbers bit-for-bit.
     Size enters only through [gate_count] (internal and leakage terms),
     which [create] already reads from the geometry; the per-toggle and
     per-refill-bit coefficients are per-bit quantities and stay fixed. *)
  let ref_read_bits = 32 * 32 * 8

  let for_geometry ?(base = default) (g : Geometry.t) =
    let read_bits = g.Geometry.assoc * g.Geometry.block_bytes * 8 in
    let scale = float_of_int read_bits /. float_of_int ref_read_bits in
    { base with k_access = base.k_access *. scale }
end

(* The energy accumulators live in their own all-float record: OCaml gives
   such records flat unboxed storage, so the per-step [on_access]/[on_cycles]
   stores don't box a float each (a mutable float field in a mixed record
   does).  The per-cycle static terms are constants of the configuration,
   computed once at [create] — same products, so reports are bit-identical
   to recomputing them per call. *)
type acc = {
  mutable e_switch : float;
  mutable e_internal : float;
  mutable e_leak : float;
  mutable window_switch : float;
  mutable peak : float;
  int_per_cycle : float;
  leak_per_cycle : float;
}

type t = {
  params : Params.t;
  geometry : Geometry.t;
  acc : acc;
  mutable cycles : int;
  (* peak tracking *)
  mutable window_cycles : int;
}

let create ?(params = Params.default) geometry =
  let g = float_of_int geometry.Geometry.gate_count in
  {
    params;
    geometry;
    acc =
      {
        e_switch = 0.0;
        e_internal = 0.0;
        e_leak = 0.0;
        window_switch = 0.0;
        peak = 0.0;
        int_per_cycle = params.Params.k_internal_per_gate *. g;
        leak_per_cycle = params.Params.k_leakage_per_gate *. g;
      };
    cycles = 0;
    window_cycles = 0;
  }

let on_access t ~toggles ~refilled_words =
  let a = t.acc in
  let e =
    t.params.Params.k_access
    +. (t.params.Params.k_output *. float_of_int toggles)
    +. (t.params.Params.k_refill_per_bit *. float_of_int (refilled_words * 32))
  in
  a.e_switch <- a.e_switch +. e;
  a.window_switch <- a.window_switch +. e

let close_window t n =
  (* n cycles of this window: static power is constant per cycle, so the
     window power is switching/window + static. *)
  let a = t.acc in
  if n > 0 then begin
    let power =
      (a.window_switch /. float_of_int n) +. a.int_per_cycle +. a.leak_per_cycle
    in
    if power > a.peak then a.peak <- power
  end;
  a.window_switch <- 0.0;
  t.window_cycles <- 0

let on_cycles t n =
  if n > 0 then begin
    let a = t.acc in
    let fn = float_of_int n in
    a.e_internal <- a.e_internal +. (a.int_per_cycle *. fn);
    a.e_leak <- a.e_leak +. (a.leak_per_cycle *. fn);
    t.cycles <- t.cycles + n;
    t.window_cycles <- t.window_cycles + n;
    if t.window_cycles >= t.params.Params.peak_window_cycles then
      close_window t t.window_cycles
  end

type report = {
  switching : float;
  internal : float;
  leakage : float;
  total : float;
  peak_power : float;
  cycles : int;
}

let report t =
  (* fold any open window into the peak before reporting *)
  if t.window_cycles > 0 then close_window t t.window_cycles;
  let a = t.acc in
  {
    switching = a.e_switch;
    internal = a.e_internal;
    leakage = a.e_leak;
    total = a.e_switch +. a.e_internal +. a.e_leak;
    peak_power = a.peak;
    cycles = t.cycles;
  }

let avg_power r = if r.cycles = 0 then 0.0 else r.total /. float_of_int r.cycles
