(** Sim-panalyzer-style power accounting for one instruction cache.

    Implements the paper's model (§4.1):  P = A·C·V²·f + V·I_leak, split as

    - {b switching} power: output drivers and address path, proportional to
      per-access bit toggles plus refill traffic on misses;
    - {b internal} power: clock/precharge power of the whole cache block,
      proportional to gate count, accrued every cycle the cache is on;
    - {b leakage} power: proportional to gate count and elapsed time;
    - {b peak} power: maximum power over any accounting window.

    Accounting is {e integer event counting}: accesses, toggles, refill
    words, cycles and retired instructions.  Every energy figure is a
    closed-form function of those counters ({!switching_energy},
    {!window_power}, {!report_of_counts}), evaluated on demand — never an
    accumulation of per-access floats.  Two simulators that count the same
    integers therefore report bit-identical floats, which is what lets the
    single-pass all-geometry DSE kernel reproduce a per-geometry replay
    exactly.  Peak windows close every [peak_window_insns] {e retired
    instructions} ({!on_retire}), an event-aligned boundary shared by all
    geometries; a cycle-aligned window would close at geometry-dependent
    points.

    Energies are in arbitrary consistent units; every figure reports
    ratios against the ARM16 baseline, where the units cancel. *)

module Params : sig
  type t = {
    k_access : float;
        (** fixed energy per access: bitline precharge, wordline drive and
            output-bus switching at a constant activity factor — the term
            that makes switching power proportional to fetch count *)
    k_output : float;
        (** energy per data-dependent output/address toggle *)
    k_refill_per_bit : float;
        (** energy per bit written on refill (switching component) *)
    k_internal_per_gate : float;
        (** per-gate per-cycle clock energy (internal component) *)
    k_leakage_per_gate : float;
        (** per-gate per-cycle leakage energy (static component) *)
    peak_window_insns : int;
        (** retired instructions per peak-power evaluation window *)
  }

  val default : t
  (** Calibrated so an ARM16/SA-1100-like run shows the paper's Figure 6
      breakdown: internal > 50 %, switching ≈ a third, leakage ≈ a tenth
      (0.35 um process, where leakage is minor). *)

  val for_geometry : ?base:t -> Geometry.t -> t
  (** Analytic scaling of [base] (default {!default}) to an arbitrary
      cache organization, for design-space sweeps.  A read probes
      [assoc] ways of [block_bytes] each, so [k_access] scales with
      [assoc * block_bytes * 8] relative to the reference 32-way / 32 B
      organization (8192 bits) the constants were calibrated on; at both
      paper geometries (16 K and 8 K, which share ways and block size)
      the result equals [base] exactly, so grid points coincide with the
      published ARM16/ARM8/FITS16/FITS8 numbers.  Cache {e size} affects
      power through the geometry's gate count (internal and leakage
      terms) rather than through any coefficient here. *)
end

(** {2 Closed-form energy expressions}

    The single source of the model's float arithmetic, shared by the
    incremental accountant below and by batch evaluators (the DSE sweep
    kernel) that count accesses/toggles/cycles themselves.  Keeping every
    caller on these exact expressions is what makes their reports
    bit-identical. *)

val switching_energy :
  Params.t -> accesses:int -> toggles:int -> refill_words:int -> float
(** [k_access·accesses + k_output·toggles + k_refill_per_bit·32·refill_words]. *)

val internal_per_cycle : Params.t -> Geometry.t -> float
val leakage_per_cycle : Params.t -> Geometry.t -> float

val window_power :
  Params.t ->
  Geometry.t ->
  accesses:int ->
  toggles:int ->
  refill_words:int ->
  cycles:int ->
  float
(** Power of one accounting window: switching energy over the window
    divided by its cycle count, plus the static per-cycle terms.
    [cycles] must be positive (zero-cycle windows carry no sample). *)

type t

val create : ?params:Params.t -> Geometry.t -> t

val on_access : t -> toggles:int -> refilled_words:int -> unit
(** Record one cache access (switching activity). *)

val on_cycles : t -> int -> unit
(** Advance simulated time: accrues internal/leakage cycles, attributed
    to the open peak window. *)

val on_retire : t -> unit
(** Record one retired instruction.  Every [peak_window_insns] retirements
    the open window is evaluated ({!window_power}) into the running peak
    and a fresh window starts.  Instruction retirement is the one event
    stream shared by every cache geometry replaying the same trace, so
    window boundaries land at identical points across a design-space
    sweep. *)

val window_room : t -> int
(** Retirements left before the open peak window closes; always in
    [1, peak_window_insns].  The batch quantum for {!on_block}. *)

val on_block : t -> accesses:int -> toggles:int -> refilled_words:int ->
  cycles:int -> insns:int -> unit
(** Batched equivalent of [insns] interleaved {!on_access} /
    {!on_cycles} / {!on_retire} calls whose activity sums to the given
    counts.  Bit-identical to the per-instruction sequence {e provided}
    [insns <= window_room t]: window closes happen at retire boundaries
    and window sums are order-free, so the only thing a batch could get
    wrong is skipping a close that falls strictly inside it — the
    precondition rules that out.  Callers chunk longer runs by
    [window_room].  Used by {!Pf_cpu.Pipeline.issue_alu_span}. *)

type report = {
  switching : float;
  internal : float;
  leakage : float;
  total : float;          (** switching + internal + leakage *)
  peak_power : float;     (** max energy/cycle over any closed window *)
  cycles : int;
}

val report : t -> report
(** Read-only: evaluates the closed forms over the counters, folding any
    open partial window into the peak without disturbing it — safe to call
    mid-stream and repeatedly. *)

val report_of_counts :
  ?params:Params.t ->
  Geometry.t ->
  accesses:int ->
  toggles:int ->
  refill_words:int ->
  cycles:int ->
  peak:float ->
  report
(** Build the same report directly from externally-maintained counters —
    the batch path used by the all-geometry sweep kernel.  Feeding the
    counters an incremental accountant would have accumulated yields the
    bit-identical report. *)

val avg_power : report -> float
(** Mean power in energy units per cycle. *)
