(** Sim-panalyzer-style power accounting for one instruction cache.

    Implements the paper's model (§4.1):  P = A·C·V²·f + V·I_leak, split as

    - {b switching} power: output drivers and address path, proportional to
      per-access bit toggles plus refill traffic on misses;
    - {b internal} power: clock/precharge power of the whole cache block,
      proportional to gate count, accrued every cycle the cache is on;
    - {b leakage} power: proportional to gate count and elapsed time;
    - {b peak} power: maximum power over any accounting window.

    Energies are in arbitrary consistent units; every figure reports
    ratios against the ARM16 baseline, where the units cancel. *)

module Params : sig
  type t = {
    k_access : float;
        (** fixed energy per access: bitline precharge, wordline drive and
            output-bus switching at a constant activity factor — the term
            that makes switching power proportional to fetch count *)
    k_output : float;
        (** energy per data-dependent output/address toggle *)
    k_refill_per_bit : float;
        (** energy per bit written on refill (switching component) *)
    k_internal_per_gate : float;
        (** per-gate per-cycle clock energy (internal component) *)
    k_leakage_per_gate : float;
        (** per-gate per-cycle leakage energy (static component) *)
    peak_window_cycles : int;
        (** window over which peak power is evaluated *)
  }

  val default : t
  (** Calibrated so an ARM16/SA-1100-like run shows the paper's Figure 6
      breakdown: internal > 50 %, switching ≈ a third, leakage ≈ a tenth
      (0.35 um process, where leakage is minor). *)

  val for_geometry : ?base:t -> Geometry.t -> t
  (** Analytic scaling of [base] (default {!default}) to an arbitrary
      cache organization, for design-space sweeps.  A read probes
      [assoc] ways of [block_bytes] each, so [k_access] scales with
      [assoc * block_bytes * 8] relative to the reference 32-way / 32 B
      organization (8192 bits) the constants were calibrated on; at both
      paper geometries (16 K and 8 K, which share ways and block size)
      the result equals [base] exactly, so grid points coincide with the
      published ARM16/ARM8/FITS16/FITS8 numbers.  Cache {e size} affects
      power through the geometry's gate count (internal and leakage
      terms) rather than through any coefficient here. *)
end

type t

val create : ?params:Params.t -> Geometry.t -> t

val on_access : t -> toggles:int -> refilled_words:int -> unit
(** Record one cache access (switching energy). *)

val on_cycles : t -> int -> unit
(** Advance simulated time: accrues internal and leakage energy and
    advances the peak-power window. *)

type report = {
  switching : float;
  internal : float;
  leakage : float;
  total : float;          (** switching + internal + leakage *)
  peak_power : float;     (** max energy/cycle over any window *)
  cycles : int;
}

val report : t -> report

val avg_power : report -> float
(** Mean power in energy units per cycle. *)
