type t = {
  nsets : int;
  assoc : int;
  block_bytes : int;
  index_bits : int;
  tag_bits : int;
  data_cells : int;
  tag_cells : int;
  decoder_gates : int;
  periph_gates : int;
  gate_count : int;
}

let output_width_bits = 32

let of_config (cfg : Pf_cache.Icache.config) =
  let nsets = Pf_cache.Icache.sets cfg in
  let tag_bits = Pf_cache.Icache.tag_bits cfg in
  let data_cells = cfg.size_bytes * 8 in
  (* tag + valid + per-line LRU state (~5 bits for 32-way) *)
  let line_state_bits = tag_bits + 1 + 5 in
  let tag_cells = nsets * cfg.assoc * line_state_bits in
  let decoder_gates =
    (* a tree decoder per row plus wordline drivers *)
    (nsets * 4) + (nsets * Pf_util.Bits.log2_exact (max 2 nsets))
  in
  let periph_gates =
    (* sense amps on every bitline column, tag comparators, output mux *)
    (cfg.block_bytes * 8 * cfg.assoc / 4)
    + (cfg.assoc * tag_bits * 3)
    + (output_width_bits * cfg.assoc)
  in
  {
    nsets;
    assoc = cfg.assoc;
    block_bytes = cfg.block_bytes;
    index_bits = Pf_util.Bits.log2_exact nsets;
    tag_bits;
    data_cells;
    tag_cells;
    decoder_gates;
    periph_gates;
    gate_count = data_cells + tag_cells + decoder_gates + periph_gates;
  }
