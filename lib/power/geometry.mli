(** CACTI-lite: derive gate counts and capacitances from cache
    organization.

    Absolute numbers are arbitrary units calibrated so that the ARM16
    baseline reproduces the paper's Figure 6 power breakdown; what matters
    for every reported result is how the quantities *scale* with cache
    size, block size and associativity. *)

type t = {
  nsets : int;
  assoc : int;
  block_bytes : int;
  index_bits : int;      (** set-index width, log2 nsets *)
  tag_bits : int;
  data_cells : int;       (** SRAM bits in the data array *)
  tag_cells : int;        (** SRAM bits in tag array incl. valid *)
  decoder_gates : int;    (** row decoders *)
  periph_gates : int;     (** sense amps, comparators, output muxes *)
  gate_count : int;       (** total gate-equivalents of the block *)
}

val of_config : Pf_cache.Icache.config -> t

val output_width_bits : int
(** Width of the fetch output bus (one 32-bit word). *)
