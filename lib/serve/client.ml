(* Client side of the protocol: connect, send one request, read the
   reply.  Connects retry with backoff — the one genuinely transient
   failure here is racing a daemon that has not finished binding its
   socket (ENOENT / ECONNREFUSED). *)

let err fmt =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Internal ~where:"serve.client" fmt

let connect ?policy path =
  Retry.with_backoff ?policy ~where:"serve.client" (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e)

let request ?policy ~socket req =
  let exchange () =
    let fd = connect ?policy socket in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Proto.write_frame fd
          (Json.to_string (Proto.request_to_json req));
        match Proto.read_frame fd with
        | None -> err "daemon closed the connection without a reply"
        | Some bytes -> (
            match Json.of_string bytes with
            | Error msg -> err "malformed response JSON: %s" msg
            | Ok j -> Proto.response_of_json j))
  in
  (* a daemon dying mid-exchange surfaces as a raw Unix_error; callers
     (the load generator counting failures) get one exception type *)
  match Pf_util.Sim_error.protect ~where:"serve.client" exchange with
  | Ok resp -> resp
  | Error e -> raise (Pf_util.Sim_error.Error e)

let shutdown ?policy ~socket () =
  request ?policy ~socket
    { Proto.default_request with Proto.action = Proto.Shutdown }

let status ?policy ~socket () =
  request ?policy ~socket
    { Proto.default_request with Proto.action = Proto.Status }
