(** Client side of the serve protocol: one blocking request/response
    exchange per call, over a fresh connection.

    Connecting retries with {!Retry} backoff, so a client started
    concurrently with the daemon (the CI smoke stage, the load
    generator) tolerates the window before the socket is bound. *)

val request :
  ?policy:Retry.policy -> socket:string -> Proto.request -> Proto.response
(** Raises a structured {!Pf_util.Sim_error.Error} — never a raw
    [Unix_error] — if the daemon never becomes reachable, dies
    mid-exchange, closes the connection without replying, or replies
    with bytes that do not parse. *)

val shutdown : ?policy:Retry.policy -> socket:string -> unit -> Proto.response
(** Ask the daemon to drain and exit. *)

val status : ?policy:Retry.policy -> socket:string -> unit -> Proto.response
