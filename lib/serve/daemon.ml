(* The long-running synthesis service.

   One listening Unix-domain socket; one request/response exchange per
   connection.  The accept loop stays on the calling domain and does only
   cheap work: read the frame, parse it, answer [status]/[shutdown]
   inline, and hand compute requests to a bounded {!Pf_util.Pool.Service}
   — whose refusal when full is the backpressure signal, returned to the
   client as a structured [overloaded] reply rather than an unbounded
   queue or a dropped connection.

   Every failure mode a connection can produce — unreadable frame,
   malformed JSON, invalid request, simulation error, worker exception —
   is confined to that connection: the handler wraps everything in
   {!Pf_util.Sim_error.protect} and the worker pool isolates task
   exceptions, so the daemon itself only exits on [shutdown] (or
   [max_requests], the test harness's self-stop). *)

module SE = Pf_util.Sim_error

type config = {
  socket_path : string;
  store_dir : string option;
  jobs : int;
  queue_capacity : int;
  budget_s : float option;
  default_max_steps : int option;
  fsync : bool;
  crash : (Pf_util.Atomic_file.crash_point -> bool) option;
  max_requests : int option;
}

let default_config =
  {
    socket_path = "/tmp/powerfits-serve.sock";
    store_dir = None;
    jobs = 2;
    queue_capacity = 64;
    budget_s = None;
    default_max_steps = None;
    fsync = true;
    crash = None;
    max_requests = None;
  }

type counters = {
  m : Mutex.t;
  mutable served : int;  (* responses written, any status *)
  mutable hits : int;
  mutable computed : int;
  mutable errors : int;
  mutable overloaded : int;
  mutable degraded : int;
}

let send_response fd resp =
  try Proto.write_frame fd (Json.to_string (Proto.response_to_json resp))
  with Unix.Unix_error _ | SE.Error _ -> ()
(* the client may be gone; its reply is not worth the daemon *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let count_response c resp =
  Mutex.lock c.m;
  c.served <- c.served + 1;
  (match resp with
  | Proto.Ok_reply { cached; degraded; _ } ->
      if cached then c.hits <- c.hits + 1 else c.computed <- c.computed + 1;
      if degraded then c.degraded <- c.degraded + 1
  | Proto.Error_reply _ -> c.errors <- c.errors + 1
  | Proto.Overloaded _ -> c.overloaded <- c.overloaded + 1);
  Mutex.unlock c.m

let run ?(log = prerr_endline) (cfg : config) =
  let store, recovery =
    match cfg.store_dir with
    | None -> (None, None)
    | Some dir ->
        let s, r =
          Store.open_ ~fsync:cfg.fsync ?crash:cfg.crash ~log dir
        in
        (Some s, Some r)
  in
  (match recovery with
  | Some r ->
      log
        (Printf.sprintf
           "serve: store recovered entries=%d quarantined=%d swept_temps=%d"
           r.Store.entries r.Store.recovered_quarantined r.Store.swept_temps)
  | None -> log "serve: no artifact store (computing everything)");
  let c =
    {
      m = Mutex.create ();
      served = 0;
      hits = 0;
      computed = 0;
      errors = 0;
      overloaded = 0;
      degraded = 0;
    }
  in
  let inflight : Proto.response Inflight.t = Inflight.create () in
  let traces = Trace_share.create () in
  let handle_compute (fd, req) =
    let resp =
      Service.handle ?store ~inflight ~traces ?budget_s:cfg.budget_s
        ?default_max_steps:cfg.default_max_steps req
    in
    count_response c resp;
    send_response fd resp;
    close_quiet fd
  in
  let service =
    Pf_util.Pool.Service.create ~jobs:(max 1 cfg.jobs)
      ~capacity:cfg.queue_capacity
      ~on_error:(fun e -> log ("serve: worker error: " ^ Printexc.to_string e))
      handle_compute
  in
  let status_json () =
    Mutex.lock c.m;
    let served = c.served and hits = c.hits and computed = c.computed in
    let errors = c.errors and overloaded = c.overloaded in
    let degraded = c.degraded in
    Mutex.unlock c.m;
    Json.Obj
      ([
         ("served", Json.Int served);
         ("cache_hits", Json.Int hits);
         ("computed", Json.Int computed);
         ("errors", Json.Int errors);
         ("overloaded", Json.Int overloaded);
         ("degraded", Json.Int degraded);
         ("coalesced", Json.Int (Inflight.coalesced inflight));
         ( "trace_share",
           let shared, recorded, entries = Trace_share.stats traces in
           Json.Obj
             [
               ("shared", Json.Int shared);
               ("recorded", Json.Int recorded);
               ("entries", Json.Int entries);
             ] );
         ("in_flight", Json.Int (Inflight.pending inflight));
         ("queue_depth", Json.Int (Pf_util.Pool.Service.depth service));
         ("queue_capacity", Json.Int (Pf_util.Pool.Service.capacity service));
         ("workers", Json.Int (Pf_util.Pool.Service.workers service));
       ]
      @
      match store with
      | None -> [ ("store", Json.Null) ]
      | Some s ->
          [
            ( "store",
              Json.Obj
                [
                  ("entries", Json.Int (Store.count s));
                  ("quarantined", Json.Int (Store.quarantined s));
                ] );
          ])
  in
  (* bind, replacing a stale socket file from a previous (possibly
     crashed) daemon — the store, not the socket, is the durable state *)
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen sock 64
   with e ->
     close_quiet sock;
     raise e);
  log (Printf.sprintf "serve: listening on %s (jobs=%d capacity=%d)"
         cfg.socket_path cfg.jobs cfg.queue_capacity);
  let stop = ref false in
  let accepted = ref 0 in
  while not !stop do
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ -> (
        incr accepted;
        let parsed =
          SE.protect ~where:"serve.daemon" (fun () ->
              match Proto.read_frame fd with
              | None -> None
              | Some bytes -> (
                  match Json.of_string bytes with
                  | Error msg ->
                      SE.raisef SE.Invalid_config ~where:"serve.daemon"
                        "malformed request JSON: %s" msg
                  | Ok j -> Some (Proto.request_of_json j)))
        in
        match parsed with
        | Error e ->
            let resp = Proto.Error_reply e in
            count_response c resp;
            send_response fd resp;
            close_quiet fd
        | Ok None -> close_quiet fd (* client connected and hung up *)
        | Ok (Some req) -> (
            match req.Proto.action with
            | Proto.Status ->
                let resp =
                  Proto.Ok_reply
                    { result = status_json (); cached = false; degraded = false }
                in
                count_response c resp;
                send_response fd resp;
                close_quiet fd
            | Proto.Shutdown ->
                let resp =
                  Proto.Ok_reply
                    {
                      result = Json.Obj [ ("stopping", Json.Bool true) ];
                      cached = false;
                      degraded = false;
                    }
                in
                count_response c resp;
                send_response fd resp;
                close_quiet fd;
                stop := true
            | Proto.Synthesize | Proto.Evaluate | Proto.Explore_point ->
                if not (Pf_util.Pool.Service.submit service (fd, req)) then begin
                  let resp =
                    Proto.Overloaded
                      {
                        depth = Pf_util.Pool.Service.depth service;
                        capacity = Pf_util.Pool.Service.capacity service;
                      }
                  in
                  count_response c resp;
                  send_response fd resp;
                  close_quiet fd
                end));
        (match cfg.max_requests with
        | Some n when !accepted >= n -> stop := true
        | _ -> ())
  done;
  (* graceful shutdown: stop accepting, finish every admitted request,
     then make the store durable *)
  close_quiet sock;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Pf_util.Pool.Service.drain service;
  Option.iter Store.close store;
  Mutex.lock c.m;
  log
    (Printf.sprintf
       "serve: shutdown complete served=%d hits=%d computed=%d errors=%d \
        overloaded=%d degraded=%d coalesced=%d"
       c.served c.hits c.computed c.errors c.overloaded c.degraded
       (Inflight.coalesced inflight));
  Mutex.unlock c.m
