(** The [powerfits serve] daemon: a Unix-domain-socket service wrapping
    {!Service} with bounded admission and a crash-safe {!Store}.

    One request/response exchange per connection.  [status] and
    [shutdown] answer on the accept loop; compute requests go through a
    bounded {!Pf_util.Pool.Service} whose refusal-when-full becomes a
    structured [overloaded] reply — backpressure, not unbounded queueing.
    Identical concurrent requests coalesce ({!Inflight}): the second
    waiter blocks on the first computation and shares its response; the
    [status] report and shutdown summary count coalesced requests.
    Any single connection's failure (unreadable frame, malformed request,
    simulation error, worker exception) is confined to that connection.

    Graceful shutdown — a [shutdown] request, or [max_requests] for
    self-stopping test daemons — drains every admitted request, closes
    and fsyncs the store, and removes the socket file. *)

type config = {
  socket_path : string;
  store_dir : string option;  (** [None]: no cache, compute everything *)
  jobs : int;  (** worker domains *)
  queue_capacity : int;  (** admission bound *)
  budget_s : float option;
      (** default per-request wall-clock budget
          ({!Service.default_budget_s} when [None]) *)
  default_max_steps : int option;
  fsync : bool;  (** store durability; tests trade it for speed *)
  crash : (Pf_util.Atomic_file.crash_point -> bool) option;
      (** store-write crash injection hook (the CLI's [--crash-at]) *)
  max_requests : int option;
      (** stop after accepting this many connections *)
}

val default_config : config
(** [/tmp/powerfits-serve.sock], no store, 2 jobs, capacity 64, fsync
    on. *)

val run : ?log:(string -> unit) -> config -> unit
(** Open the store (recovery scan first), bind the socket (replacing a
    stale socket file), and serve until shutdown; blocks the calling
    domain for the daemon's whole life.  [log] (default stderr) receives
    startup/recovery/quarantine/shutdown lines — the CI smoke stage
    greps them. *)
