(* In-flight request coalescing.

   When two identical compute requests land on different worker domains
   at the same time, the store cannot help — neither has committed a
   result yet — so without coordination both run the full synthesis.
   This table closes that window: the first arrival for a cache key
   becomes the *leader* and computes; every later arrival for the same
   key becomes a *follower* and blocks on the leader's slot until the
   result (or the leader's exception) is published, then shares it
   verbatim.  The slot is removed once published, so a request arriving
   after completion starts a fresh computation (or, in the daemon, hits
   the store the leader just populated).

   Publication is all-or-nothing under the table mutex: the leader
   stores an [('a, exn) result], broadcasts, and unlinks the key before
   releasing the lock, so a follower can never observe an empty slot
   after wakeup nor join a slot that already completed.  The computation
   itself runs outside the lock — only table bookkeeping is serialized. *)

type 'a slot = {
  cond : Condition.t;
  mutable published : ('a, exn) result option; (* None while computing *)
}

type 'a t = {
  m : Mutex.t;
  tbl : (string, 'a slot) Hashtbl.t;
  mutable waiting : int;   (* followers currently blocked *)
  mutable coalesced : int; (* total computations avoided, monotonic *)
}

type 'a outcome = Led of 'a | Joined of 'a

let create () =
  { m = Mutex.create (); tbl = Hashtbl.create 16; waiting = 0; coalesced = 0 }

let pending t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.m;
  n

let waiting t =
  Mutex.lock t.m;
  let n = t.waiting in
  Mutex.unlock t.m;
  n

let coalesced t =
  Mutex.lock t.m;
  let n = t.coalesced in
  Mutex.unlock t.m;
  n

let run t ~key f =
  Mutex.lock t.m;
  match Hashtbl.find_opt t.tbl key with
  | Some slot ->
      (* follower: the leader unlinks the key before broadcasting, so a
         visible slot is always still computing — wait for it *)
      t.waiting <- t.waiting + 1;
      let rec await () =
        match slot.published with
        | None ->
            Condition.wait slot.cond t.m;
            await ()
        | Some r -> r
      in
      let r = await () in
      t.waiting <- t.waiting - 1;
      t.coalesced <- t.coalesced + 1;
      Mutex.unlock t.m;
      (match r with Ok v -> Joined v | Error e -> raise e)
  | None ->
      let slot = { cond = Condition.create (); published = None } in
      Hashtbl.replace t.tbl key slot;
      Mutex.unlock t.m;
      let r = try Ok (f ()) with e -> Error e in
      Mutex.lock t.m;
      slot.published <- Some r;
      Hashtbl.remove t.tbl key;
      Condition.broadcast slot.cond;
      Mutex.unlock t.m;
      (match r with Ok v -> Led v | Error e -> raise e)
