(** In-flight request coalescing for the daemon's worker pool.

    The crash-safe {!Store} deduplicates *completed* work; this table
    deduplicates *concurrent* work: when several worker domains receive
    the same cache key while the first computation is still running, one
    becomes the leader and the rest block until its result is published,
    then share it verbatim.  Entries exist only while a computation is
    in flight — a key arriving after publication leads a fresh run (and,
    in the daemon, hits the store entry the leader committed). *)

type 'a t
(** A keyed table of in-flight computations.  Thread- and domain-safe;
    one per daemon. *)

val create : unit -> 'a t

type 'a outcome =
  | Led of 'a     (** this caller ran the computation *)
  | Joined of 'a  (** shared a concurrent leader's result verbatim *)

val run : 'a t -> key:string -> (unit -> 'a) -> 'a outcome
(** [run t ~key f] — if no computation for [key] is in flight, run [f]
    (outside the table lock), publish its result, and return [Led];
    otherwise block until the current leader publishes and return
    [Joined] with the leader's value.  If the leader's [f] raises, the
    exception is published and re-raised in the leader {e and} every
    follower ({!Service.handle} never raises, so the daemon path never
    exercises this; it exists so a buggy closure cannot strand
    followers). *)

val pending : 'a t -> int
(** Keys currently in flight. *)

val waiting : 'a t -> int
(** Followers currently blocked on a leader. *)

val coalesced : 'a t -> int
(** Total computations avoided since {!create} (monotonic) — the
    daemon's [status] report and shutdown summary surface this. *)
