(* Minimal JSON for the serve protocol.  The tree has so far only
   hand-rolled JSON *writers* (bench, explore); the daemon also has to
   *parse* untrusted request bytes, so this is a small complete
   parser/printer pair.  No external dependency — the container image
   pins the package set.

   Numbers: ints stay ints (cycle counts overflow float-exactness at
   2^53, far above anything simulated, but exact is exact); everything
   else is float, printed with %.17g so a parse→print→parse round trip
   is lossless. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let err fmt =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config ~where:"serve.json"
    fmt

(* ---- printing ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then err "cannot print non-finite float %h" f
      else Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print_to buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          print_to buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  print_to buf j;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let lit st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then (
    st.pos <- st.pos + n;
    v)
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if st.pos >= String.length st.s then fail st "unterminated escape";
        let e = st.s.[st.pos] in
        st.pos <- st.pos + 1;
        match e with
        | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'u' ->
            if st.pos + 4 > String.length st.s then fail st "short \\u escape";
            let hex = String.sub st.s st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail st "bad \\u escape"
            in
            (* protocol strings are ASCII-or-bytes; encode BMP scalars
               as UTF-8 so round trips hold for what we emit *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then (
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
            else (
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
            go ()
        | _ -> fail st "bad escape")
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  match int_of_string_opt tok with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "bad number %S" tok))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some 't' -> lit st "true" (Bool true)
  | Some 'f' -> lit st "false" (Bool false)
  | Some 'n' -> lit st "null" Null
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then (
        st.pos <- st.pos + 1;
        List [])
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then (
        st.pos <- st.pos + 1;
        Obj [])
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
  | Some _ -> parse_number st

let of_string s =
  match
    let st = { s; pos = 0 } in
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing bytes";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
