(** Minimal JSON values for the serve protocol.

    The daemon parses untrusted request bytes and prints responses /
    cached payloads; both directions go through this one value type so a
    print → parse round trip is the identity (asserted by the serve
    tests).  Ints print as ints (exact), floats with enough digits to be
    lossless. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Raises a structured
    [Invalid_config] {!Pf_util.Sim_error.Error} on a non-finite float —
    the protocol has no spelling for those. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON document; [Error] carries a message with a
    byte offset.  Never raises on malformed input — request bytes come
    off a socket. *)

(** {2 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts [Int] too — [7] and [7.0] are the same JSON number. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
