(* KIR programs as JSON, for carrying inline programs in serve requests
   and for content-addressing: the store key hashes the *canonical
   encoding* of the program, so two requests shipping the same program
   (or naming the same registry benchmark) share one cache entry no
   matter how the request bytes were formatted. *)

module A = Pf_kir.Ast

let err fmt =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config
    ~where:"serve.kir_codec" fmt

(* ---- encoding ---- *)

let scale_name = function A.W8 -> "w8" | A.W16 -> "w16" | A.W32 -> "w32"

let binop_name = function
  | A.Add -> "add" | A.Sub -> "sub" | A.Mul -> "mul"
  | A.Div -> "div" | A.Rem -> "rem" | A.Udiv -> "udiv" | A.Urem -> "urem"
  | A.And -> "and" | A.Or -> "or" | A.Xor -> "xor"
  | A.Shl -> "shl" | A.Shr -> "shr" | A.Sar -> "sar"

let cmp_name = function
  | A.Eq -> "eq" | A.Ne -> "ne" | A.Lt -> "lt" | A.Le -> "le"
  | A.Gt -> "gt" | A.Ge -> "ge" | A.Ult -> "ult" | A.Ule -> "ule"
  | A.Ugt -> "ugt" | A.Uge -> "uge"

let unop_name = function A.Neg -> "neg" | A.Bnot -> "bnot"

(* every node is ["op", args...]: compact, order-canonical (no object
   key-order ambiguity inside the hashed part) *)
let rec expr_to_json (e : A.expr) : Json.t =
  let l xs = Json.List xs in
  let s x = Json.String x in
  match e with
  | A.Int i -> l [ s "int"; Json.Int i ]
  | A.Var v -> l [ s "var"; s v ]
  | A.Global_addr g -> l [ s "global-addr"; s g ]
  | A.Load { scale; signed; addr } ->
      l [ s "load"; s (scale_name scale); Json.Bool signed; expr_to_json addr ]
  | A.Binop (op, a, b) ->
      l [ s "binop"; s (binop_name op); expr_to_json a; expr_to_json b ]
  | A.Unop (op, a) -> l [ s "unop"; s (unop_name op); expr_to_json a ]
  | A.Cmp (c, a, b) ->
      l [ s "cmp"; s (cmp_name c); expr_to_json a; expr_to_json b ]
  | A.Call (f, args) ->
      l [ s "call"; s f; Json.List (List.map expr_to_json args) ]

let rec stmt_to_json (st : A.stmt) : Json.t =
  let l xs = Json.List xs in
  let s x = Json.String x in
  let body b = Json.List (List.map stmt_to_json b) in
  match st with
  | A.Let (v, e) -> l [ s "let"; s v; expr_to_json e ]
  | A.Assign (v, e) -> l [ s "assign"; s v; expr_to_json e ]
  | A.Store { scale; addr; value } ->
      l [ s "store"; s (scale_name scale); expr_to_json addr; expr_to_json value ]
  | A.If (c, t, e) -> l [ s "if"; expr_to_json c; body t; body e ]
  | A.While (c, b) -> l [ s "while"; expr_to_json c; body b ]
  | A.For (v, lo, hi, b) ->
      l [ s "for"; s v; expr_to_json lo; expr_to_json hi; body b ]
  | A.Expr e -> l [ s "expr"; expr_to_json e ]
  | A.Return None -> l [ s "return" ]
  | A.Return (Some e) -> l [ s "return"; expr_to_json e ]
  | A.Break -> l [ s "break" ]
  | A.Continue -> l [ s "continue" ]
  | A.Print_int e -> l [ s "print-int"; expr_to_json e ]
  | A.Print_char e -> l [ s "print-char"; expr_to_json e ]

let func_to_json (f : A.func) : Json.t =
  Json.Obj
    [
      ("name", Json.String f.A.name);
      ("params", Json.List (List.map (fun p -> Json.String p) f.A.params));
      ("body", Json.List (List.map stmt_to_json f.A.body));
    ]

let global_to_json (g : A.global) : Json.t =
  Json.Obj
    ([
       ("name", Json.String g.A.gname);
       ("scale", Json.String (scale_name g.A.gscale));
       ("length", Json.Int g.A.length);
     ]
    @
    match g.A.init with
    | None -> []
    | Some a ->
        [ ("init", Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))) ]
    )

let to_json (p : A.program) : Json.t =
  Json.Obj
    [
      ("funcs", Json.List (List.map func_to_json p.A.funcs));
      ("globals", Json.List (List.map global_to_json p.A.globals));
    ]

let canonical p = Json.to_string (to_json p)
let digest p = Digest.to_hex (Digest.string (canonical p))

(* ---- decoding ---- *)

let scale_of = function
  | "w8" -> A.W8
  | "w16" -> A.W16
  | "w32" -> A.W32
  | s -> err "bad scale %S" s

let binop_of = function
  | "add" -> A.Add | "sub" -> A.Sub | "mul" -> A.Mul
  | "div" -> A.Div | "rem" -> A.Rem | "udiv" -> A.Udiv | "urem" -> A.Urem
  | "and" -> A.And | "or" -> A.Or | "xor" -> A.Xor
  | "shl" -> A.Shl | "shr" -> A.Shr | "sar" -> A.Sar
  | s -> err "bad binop %S" s

let cmp_of = function
  | "eq" -> A.Eq | "ne" -> A.Ne | "lt" -> A.Lt | "le" -> A.Le
  | "gt" -> A.Gt | "ge" -> A.Ge | "ult" -> A.Ult | "ule" -> A.Ule
  | "ugt" -> A.Ugt | "uge" -> A.Uge
  | s -> err "bad cmp %S" s

let unop_of = function
  | "neg" -> A.Neg
  | "bnot" -> A.Bnot
  | s -> err "bad unop %S" s

let str = function Json.String s -> s | _ -> err "expected string node"
let int_ = function Json.Int i -> i | _ -> err "expected int node"
let bool_ = function Json.Bool b -> b | _ -> err "expected bool node"

let rec expr_of_json (j : Json.t) : A.expr =
  match j with
  | Json.List (Json.String op :: args) -> (
      match (op, args) with
      | "int", [ i ] -> A.Int (int_ i)
      | "var", [ v ] -> A.Var (str v)
      | "global-addr", [ g ] -> A.Global_addr (str g)
      | "load", [ sc; signed; addr ] ->
          A.Load
            {
              scale = scale_of (str sc);
              signed = bool_ signed;
              addr = expr_of_json addr;
            }
      | "binop", [ op; a; b ] ->
          A.Binop (binop_of (str op), expr_of_json a, expr_of_json b)
      | "unop", [ op; a ] -> A.Unop (unop_of (str op), expr_of_json a)
      | "cmp", [ c; a; b ] ->
          A.Cmp (cmp_of (str c), expr_of_json a, expr_of_json b)
      | "call", [ f; Json.List args ] ->
          A.Call (str f, List.map expr_of_json args)
      | op, _ -> err "bad expr node %S" op)
  | _ -> err "expected expr node"

let rec stmt_of_json (j : Json.t) : A.stmt =
  let body = function
    | Json.List xs -> List.map stmt_of_json xs
    | _ -> err "expected stmt list"
  in
  match j with
  | Json.List (Json.String op :: args) -> (
      match (op, args) with
      | "let", [ v; e ] -> A.Let (str v, expr_of_json e)
      | "assign", [ v; e ] -> A.Assign (str v, expr_of_json e)
      | "store", [ sc; addr; value ] ->
          A.Store
            {
              scale = scale_of (str sc);
              addr = expr_of_json addr;
              value = expr_of_json value;
            }
      | "if", [ c; t; e ] -> A.If (expr_of_json c, body t, body e)
      | "while", [ c; b ] -> A.While (expr_of_json c, body b)
      | "for", [ v; lo; hi; b ] ->
          A.For (str v, expr_of_json lo, expr_of_json hi, body b)
      | "expr", [ e ] -> A.Expr (expr_of_json e)
      | "return", [] -> A.Return None
      | "return", [ e ] -> A.Return (Some (expr_of_json e))
      | "break", [] -> A.Break
      | "continue", [] -> A.Continue
      | "print-int", [ e ] -> A.Print_int (expr_of_json e)
      | "print-char", [ e ] -> A.Print_char (expr_of_json e)
      | op, _ -> err "bad stmt node %S" op)
  | _ -> err "expected stmt node"

let func_of_json (j : Json.t) : A.func =
  match
    ( Option.bind (Json.member "name" j) Json.to_string_opt,
      Option.bind (Json.member "params" j) Json.to_list_opt,
      Option.bind (Json.member "body" j) Json.to_list_opt )
  with
  | Some name, Some params, Some body ->
      {
        A.name;
        params = List.map str params;
        body = List.map stmt_of_json body;
      }
  | _ -> err "bad func object (need name/params/body)"

let global_of_json (j : Json.t) : A.global =
  match
    ( Option.bind (Json.member "name" j) Json.to_string_opt,
      Option.bind (Json.member "scale" j) Json.to_string_opt,
      Option.bind (Json.member "length" j) Json.to_int_opt )
  with
  | Some gname, Some scale, Some length ->
      let init =
        match Json.member "init" j with
        | None | Some Json.Null -> None
        | Some (Json.List xs) -> Some (Array.of_list (List.map int_ xs))
        | Some _ -> err "bad global init (expected int list)"
      in
      { A.gname; gscale = scale_of scale; length; init }
  | _ -> err "bad global object (need name/scale/length)"

let of_json (j : Json.t) : A.program =
  match
    ( Option.bind (Json.member "funcs" j) Json.to_list_opt,
      Option.bind (Json.member "globals" j) Json.to_list_opt )
  with
  | Some funcs, Some globals ->
      {
        A.funcs = List.map func_of_json funcs;
        globals = List.map global_of_json globals;
      }
  | _ -> err "bad program object (need funcs/globals)"
