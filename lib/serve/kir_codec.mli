(** KIR programs as JSON.

    Serve requests carry programs inline; the artifact store addresses
    cached results by program {e content}.  Both need one canonical
    encoding: AST nodes become ["op", arg, ...] arrays (no object
    key-order ambiguity), so equal programs always produce equal bytes
    and [of_json (to_json p) = p] for every program the registry can
    build (asserted by the serve tests). *)

val to_json : Pf_kir.Ast.program -> Json.t

val of_json : Json.t -> Pf_kir.Ast.program
(** Raises a structured [Invalid_config] {!Pf_util.Sim_error.Error}
    naming the offending node on a malformed encoding. *)

val canonical : Pf_kir.Ast.program -> string
(** [Json.to_string (to_json p)] — the bytes the store key hashes. *)

val digest : Pf_kir.Ast.program -> string
(** MD5 hex of {!canonical} — the program-content component of a store
    key. *)
