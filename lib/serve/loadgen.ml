(* Load generation against a running daemon: a deterministic request
   corpus (seeded {!Pf_util.Rng} choice over benchmarks × actions × ISAs
   × geometries), [conns] concurrent client domains issuing one request
   per connection, per-request latency on the monotonic clock.

   The corpus is deliberately much smaller than the request count, so a
   long run exercises the cache hit path hard; the unique-key count is
   reported next to the hit rate to make the expectation checkable. *)

type result = {
  requests : int;
  ok : int;
  cached : int;
  degraded : int;
  errors : int;
  overloaded : int;
  unique_keys : int;
  elapsed_s : float;
  throughput_rps : float;
  hit_rate : float;  (** cached / ok *)
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
  warm_requests : int;
  warm_p50_ms : float;
  warm_p99_ms : float;
  warm_mean_ms : float;
}

(* default corpus axes: fast benchmarks only — the generator's job is
   protocol and store traffic, not long simulations *)
let default_benchmarks = [ "crc32"; "bitcount"; "stringsearch" ]

let requests_for program =
  let geometries = [ Pf_dse.Space.cache_16k; Pf_dse.Space.cache_8k ] in
  let base = Proto.default_request in
  List.concat_map
    (fun geometry ->
      [
        {
          base with
          Proto.action = Proto.Evaluate;
          program;
          isa = Proto.Arm;
          geometry;
        };
        {
          base with
          Proto.action = Proto.Evaluate;
          program;
          isa = Proto.Fits;
          geometry;
        };
        { base with Proto.action = Proto.Explore_point; program; geometry };
      ])
    geometries
  @ [ { base with Proto.action = Proto.Synthesize; program } ]

let corpus ?(inline = []) ~benchmarks () =
  List.concat_map (fun bench -> requests_for (Proto.Named bench)) benchmarks
  @ List.concat_map (fun p -> requests_for (Proto.Inline p)) inline

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (Float.of_int (n - 1) *. p /. 100.) in
    sorted.(max 0 (min (n - 1) idx))

let now_ms () = Int64.to_float (Monotonic_clock.now ()) /. 1e6

let run ?(benchmarks = default_benchmarks) ?(inline = [])
    ?(policy = Retry.default_policy) ~socket ~requests ~conns ~seed () =
  if requests < 1 then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config
      ~where:"serve.loadgen" "requests must be positive (got %d)" requests;
  let conns = max 1 conns in
  let pool = Array.of_list (corpus ~inline ~benchmarks ()) in
  let unique_keys = Array.length pool in
  (* pre-draw every request deterministically, then stripe across
     connections: the request *set* is a function of (seed, requests)
     alone, independent of conns *)
  let rng = Pf_util.Rng.create seed in
  let plan =
    Array.init requests (fun _ ->
        pool.(Pf_util.Rng.int rng unique_keys))
  in
  (* warm = not the plan's first request on its cache key.  First touches
     pay the compute (synthesis, simulation); everything after should be
     a store hit or coalesced wait, so splitting the percentiles
     separates steady-state serving latency from cold-start compute.
     The mask is a function of the plan alone, deterministic and
     conns-independent like the plan itself. *)
  let warm_at =
    let seen = Hashtbl.create 64 in
    Array.map
      (fun req ->
        let key = Service.cache_key req in
        if Hashtbl.mem seen key then true
        else begin
          Hashtbl.add seen key ();
          false
        end)
      plan
  in
  let t0 = now_ms () in
  let per_conn =
    Pf_util.Pool.map ~jobs:conns
      (fun c ->
        let lat = ref [] and warm_lat = ref [] in
        let ok = ref 0 and cached = ref 0 and degraded = ref 0 in
        let errors = ref 0 and overloaded = ref 0 in
        let i = ref c in
        while !i < requests do
          let t = now_ms () in
          (match Client.request ~policy ~socket plan.(!i) with
          | Proto.Ok_reply { cached = hit; degraded = d; _ } ->
              incr ok;
              if hit then incr cached;
              if d then incr degraded
          | Proto.Error_reply _ -> incr errors
          | Proto.Overloaded _ -> incr overloaded
          | exception Pf_util.Sim_error.Error _ -> incr errors);
          let ms = now_ms () -. t in
          lat := ms :: !lat;
          if warm_at.(!i) then warm_lat := ms :: !warm_lat;
          i := !i + conns
        done;
        (!lat, !warm_lat, !ok, !cached, !degraded, !errors, !overloaded))
      (List.init conns Fun.id)
  in
  let elapsed_s = (now_ms () -. t0) /. 1e3 in
  let lats =
    List.concat_map (fun (l, _, _, _, _, _, _) -> l) per_conn
    |> Array.of_list
  in
  let warm_lats =
    List.concat_map (fun (_, l, _, _, _, _, _) -> l) per_conn
    |> Array.of_list
  in
  Array.sort compare lats;
  Array.sort compare warm_lats;
  let sum f = List.fold_left (fun a x -> a + f x) 0 per_conn in
  let ok = sum (fun (_, _, x, _, _, _, _) -> x) in
  let cached = sum (fun (_, _, _, x, _, _, _) -> x) in
  let degraded = sum (fun (_, _, _, _, x, _, _) -> x) in
  let errors = sum (fun (_, _, _, _, _, x, _) -> x) in
  let overloaded = sum (fun (_, _, _, _, _, _, x) -> x) in
  let mean arr =
    if Array.length arr = 0 then 0.
    else Array.fold_left ( +. ) 0. arr /. float_of_int (Array.length arr)
  in
  let mean_ms = mean lats in
  let warm_mean_ms = mean warm_lats in
  {
    requests;
    ok;
    cached;
    degraded;
    errors;
    overloaded;
    unique_keys;
    elapsed_s;
    throughput_rps =
      (if elapsed_s > 0. then float_of_int requests /. elapsed_s else 0.);
    hit_rate = (if ok > 0 then float_of_int cached /. float_of_int ok else 0.);
    p50_ms = percentile lats 50.;
    p99_ms = percentile lats 99.;
    mean_ms;
    warm_requests = Array.length warm_lats;
    warm_p50_ms = percentile warm_lats 50.;
    warm_p99_ms = percentile warm_lats 99.;
    warm_mean_ms;
  }

let to_json (r : result) =
  Json.Obj
    [
      ("requests", Json.Int r.requests);
      ("ok", Json.Int r.ok);
      ("cached", Json.Int r.cached);
      ("degraded", Json.Int r.degraded);
      ("errors", Json.Int r.errors);
      ("overloaded", Json.Int r.overloaded);
      ("unique_keys", Json.Int r.unique_keys);
      ("elapsed_s", Json.Float r.elapsed_s);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("hit_rate", Json.Float r.hit_rate);
      ("p50_ms", Json.Float r.p50_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("mean_ms", Json.Float r.mean_ms);
      ("warm_requests", Json.Int r.warm_requests);
      ("warm_p50_ms", Json.Float r.warm_p50_ms);
      ("warm_p99_ms", Json.Float r.warm_p99_ms);
      ("warm_mean_ms", Json.Float r.warm_mean_ms);
    ]

let summary (r : result) =
  Printf.sprintf
    "loadgen: %d requests in %.2fs (%.0f req/s) ok=%d cached=%d (hit %.1f%%) \
     degraded=%d errors=%d overloaded=%d unique_keys=%d p50=%.2fms p99=%.2fms \
     warm(%d) p50=%.2fms p99=%.2fms"
    r.requests r.elapsed_s r.throughput_rps r.ok r.cached (100. *. r.hit_rate)
    r.degraded r.errors r.overloaded r.unique_keys r.p50_ms r.p99_ms
    r.warm_requests r.warm_p50_ms r.warm_p99_ms
