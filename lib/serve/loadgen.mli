(** Load generation against a running daemon.

    Builds a deterministic request corpus (seeded choice over fast
    benchmarks × actions × ISAs × the two paper geometries — a few dozen
    unique cache keys, so a long run hammers the hit path), issues
    [requests] of them over [conns] concurrent client domains (one
    request per connection), and reports throughput, hit rate and
    latency percentiles.  The request {e set} depends only on
    [(seed, requests)], never on [conns]. *)

type result = {
  requests : int;
  ok : int;
  cached : int;
  degraded : int;
  errors : int;  (** error replies plus client-side failures *)
  overloaded : int;  (** backpressure refusals *)
  unique_keys : int;  (** corpus size the requests were drawn from *)
  elapsed_s : float;
  throughput_rps : float;
  hit_rate : float;  (** cached / ok *)
  p50_ms : float;  (** over every request, first touches included *)
  p99_ms : float;
  mean_ms : float;
  warm_requests : int;
      (** requests whose cache key already appeared earlier in the plan *)
  warm_p50_ms : float;
      (** warm-only percentiles: the plan's first request on each unique
          cache key pays the compute (synthesis, simulation), so the raw
          percentiles mix cold-start compute into serving latency; these
          exclude first touches.  The warm set is a function of the plan
          alone — deterministic in [(seed, requests)], independent of
          [conns] — not of which replies happened to report [cached]. *)
  warm_p99_ms : float;
  warm_mean_ms : float;
}

val default_benchmarks : string list
(** ["crc32"; "bitcount"; "stringsearch"] — fast programs; the generator
    measures protocol and store traffic, not long simulations. *)

val corpus :
  ?inline:Pf_kir.Ast.program list ->
  benchmarks:string list ->
  unit ->
  Proto.request list
(** The unique requests load is drawn from: per benchmark, ARM/FITS
    evaluate and an explore-point at each paper geometry, plus one
    synthesize.  [inline] programs (e.g. a {!Pf_workgen}-generated
    population slice) get the same request shapes, shipped in the
    request body as [Proto.Inline]. *)

val run :
  ?benchmarks:string list ->
  ?inline:Pf_kir.Ast.program list ->
  ?policy:Retry.policy ->
  socket:string ->
  requests:int ->
  conns:int ->
  seed:int ->
  unit ->
  result
(** Raises a structured [Invalid_config] error for [requests < 1];
    individual request failures are counted, never raised. *)

val to_json : result -> Json.t
val summary : result -> string
