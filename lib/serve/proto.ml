(* Wire protocol: length-prefixed JSON frames over a Unix-domain socket,
   one request/response exchange per connection.

   Frame = 4-byte big-endian payload length + payload bytes.  The length
   cap bounds what a hostile or confused peer can make the daemon
   allocate; oversized or malformed frames produce structured errors,
   never exceptions escaping the connection handler. *)

let max_frame = 16 * 1024 * 1024

let err fmt =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config ~where:"serve.proto"
    fmt

(* ---- framing ---- *)

let really_write fd s =
  let len = String.length s in
  let written = ref 0 in
  while !written < len do
    written :=
      !written + Unix.write_substring fd s !written (len - !written)
  done

let really_read fd n =
  let buf = Bytes.create n in
  let got = ref 0 in
  (try
     while !got < n do
       let r = Unix.read fd buf !got (n - !got) in
       if r = 0 then raise Exit;
       got := !got + r
     done
   with Exit -> ());
  if !got = n then Some (Bytes.to_string buf) else None

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then err "frame of %d bytes exceeds %d" len max_frame;
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set hdr 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set hdr 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set hdr 3 (Char.chr (len land 0xFF));
  really_write fd (Bytes.to_string hdr ^ payload)

let read_frame fd =
  match really_read fd 4 with
  | None -> None
  | Some hdr ->
      let len =
        (Char.code hdr.[0] lsl 24)
        lor (Char.code hdr.[1] lsl 16)
        lor (Char.code hdr.[2] lsl 8)
        lor Char.code hdr.[3]
      in
      if len > max_frame then err "frame of %d bytes exceeds %d" len max_frame;
      really_read fd len

(* ---- requests ---- *)

type action = Synthesize | Evaluate | Explore_point | Status | Shutdown

let action_name = function
  | Synthesize -> "synthesize"
  | Evaluate -> "evaluate"
  | Explore_point -> "explore-point"
  | Status -> "status"
  | Shutdown -> "shutdown"

let action_of_string = function
  | "synthesize" -> Some Synthesize
  | "evaluate" -> Some Evaluate
  | "explore-point" -> Some Explore_point
  | "status" -> Some Status
  | "shutdown" -> Some Shutdown
  | _ -> None

type program = Named of string | Inline of Pf_kir.Ast.program

type isa = Arm | Fits

let isa_name = function Arm -> "arm" | Fits -> "fits"

type request = {
  action : action;
  program : program;
  isa : isa;
  weighting : Pf_multi.Weighting.t;
  geometry : Pf_cache.Icache.config;
  dict_budget : int option;
  scale : int;
  unroll : int option;  (** [None]: registry default (1 for inline) *)
  max_steps : int option;
  budget_s : float option;  (** [None]: daemon default *)
  no_cache : bool;
}

let default_request =
  {
    action = Evaluate;
    program = Named "crc32";
    isa = Arm;
    weighting = Pf_multi.Weighting.Dyn_count;
    geometry = Pf_dse.Space.cache_16k;
    dict_budget = None;
    scale = 1;
    unroll = None;
    max_steps = None;
    budget_s = None;
    no_cache = false;
  }

let geometry_to_json (g : Pf_cache.Icache.config) =
  Json.Obj
    [
      ("size_bytes", Json.Int g.Pf_cache.Icache.size_bytes);
      ("block_bytes", Json.Int g.Pf_cache.Icache.block_bytes);
      ("assoc", Json.Int g.Pf_cache.Icache.assoc);
    ]

let geometry_of_json j =
  match
    ( Option.bind (Json.member "size_bytes" j) Json.to_int_opt,
      Option.bind (Json.member "block_bytes" j) Json.to_int_opt,
      Option.bind (Json.member "assoc" j) Json.to_int_opt )
  with
  | Some size_bytes, Some block_bytes, Some assoc ->
      let g = { Pf_cache.Icache.size_bytes; block_bytes; assoc } in
      Pf_cache.Icache.validate g;
      g
  | _ -> err "bad geometry (need size_bytes/block_bytes/assoc)"

let request_to_json (r : request) =
  let base =
    [
      ("action", Json.String (action_name r.action));
      (match r.program with
      | Named n -> ("benchmark", Json.String n)
      | Inline p -> ("program", Kir_codec.to_json p));
      ("isa", Json.String (isa_name r.isa));
      ("weighting", Json.String (Pf_multi.Weighting.to_string r.weighting));
      ("geometry", geometry_to_json r.geometry);
      ("scale", Json.Int r.scale);
    ]
  in
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.Obj
    (base
    @ opt "dict_budget" (fun b -> Json.Int b) r.dict_budget
    @ opt "unroll" (fun u -> Json.Int u) r.unroll
    @ opt "max_steps" (fun m -> Json.Int m) r.max_steps
    @ opt "budget_s" (fun b -> Json.Float b) r.budget_s
    @ if r.no_cache then [ ("no_cache", Json.Bool true) ] else [])

let request_of_json j =
  let action =
    match
      Option.bind (Option.bind (Json.member "action" j) Json.to_string_opt)
        action_of_string
    with
    | Some a -> a
    | None -> err "bad or missing action"
  in
  let program =
    match (Json.member "benchmark" j, Json.member "program" j) with
    | Some (Json.String n), None -> Named n
    | None, Some p -> Inline (Kir_codec.of_json p)
    | None, None -> default_request.program
    | _ -> err "give either benchmark or program, not both"
  in
  let isa =
    match Option.bind (Json.member "isa" j) Json.to_string_opt with
    | Some "arm" | None -> Arm
    | Some "fits" -> Fits
    | Some s -> err "bad isa %S (arm|fits)" s
  in
  let weighting =
    match Option.bind (Json.member "weighting" j) Json.to_string_opt with
    | None -> default_request.weighting
    | Some s -> (
        match Pf_multi.Weighting.of_string s with
        | Ok w -> w
        | Error msg -> err "bad weighting: %s" msg)
  in
  let geometry =
    match Json.member "geometry" j with
    | None -> default_request.geometry
    | Some g -> geometry_of_json g
  in
  let int_field name =
    match Json.member name j with
    | None -> None
    | Some v -> (
        match Json.to_int_opt v with
        | Some i -> Some i
        | None -> err "bad %s (expected int)" name)
  in
  let scale = Option.value ~default:1 (int_field "scale") in
  if scale < 1 then err "bad scale %d" scale;
  let budget_s =
    match Json.member "budget_s" j with
    | None -> None
    | Some v -> (
        match Json.to_float_opt v with
        | Some f -> Some f
        | None -> err "bad budget_s (expected number)")
  in
  let no_cache =
    match Option.bind (Json.member "no_cache" j) Json.to_bool_opt with
    | Some b -> b
    | None -> false
  in
  {
    action;
    program;
    isa;
    weighting;
    geometry;
    dict_budget = int_field "dict_budget";
    scale;
    unroll = int_field "unroll";
    max_steps = int_field "max_steps";
    budget_s;
    no_cache;
  }

(* ---- responses ---- *)

type response =
  | Ok_reply of { result : Json.t; cached : bool; degraded : bool }
  | Error_reply of Pf_util.Sim_error.t
  | Overloaded of { depth : int; capacity : int }

let response_to_json = function
  | Ok_reply { result; cached; degraded } ->
      Json.Obj
        [
          ("status", Json.String "ok");
          ("cached", Json.Bool cached);
          ("degraded", Json.Bool degraded);
          ("result", result);
        ]
  | Error_reply e ->
      Json.Obj
        [
          ("status", Json.String "error");
          ( "error",
            Json.Obj
              ([
                 ( "kind",
                   Json.String (Pf_util.Sim_error.kind_name e.Pf_util.Sim_error.kind)
                 );
                 ("where", Json.String e.Pf_util.Sim_error.where);
                 ("detail", Json.String e.Pf_util.Sim_error.detail);
               ]
              @
              match e.Pf_util.Sim_error.backtrace with
              | None -> []
              | Some bt -> [ ("backtrace", Json.String bt) ]) );
        ]
  | Overloaded { depth; capacity } ->
      Json.Obj
        [
          ("status", Json.String "overloaded");
          ("depth", Json.Int depth);
          ("capacity", Json.Int capacity);
        ]

let response_of_json j =
  match Option.bind (Json.member "status" j) Json.to_string_opt with
  | Some "ok" ->
      let flag name =
        Option.value ~default:false
          (Option.bind (Json.member name j) Json.to_bool_opt)
      in
      let result = Option.value ~default:Json.Null (Json.member "result" j) in
      Ok_reply { result; cached = flag "cached"; degraded = flag "degraded" }
  | Some "error" -> (
      let e = Option.value ~default:Json.Null (Json.member "error" j) in
      let field name =
        Option.value ~default:"?"
          (Option.bind (Json.member name e) Json.to_string_opt)
      in
      let kind =
        match field "kind" with
        | "decode-fault" -> Pf_util.Sim_error.Decode_fault
        | "memory-fault" -> Pf_util.Sim_error.Memory_fault
        | "watchdog-timeout" -> Pf_util.Sim_error.Watchdog_timeout
        | "divergence" -> Pf_util.Sim_error.Divergence
        | "translate-gap" -> Pf_util.Sim_error.Translate_gap
        | "invalid-config" -> Pf_util.Sim_error.Invalid_config
        | _ -> Pf_util.Sim_error.Internal
      in
      Error_reply
        {
          Pf_util.Sim_error.kind;
          where = field "where";
          detail = field "detail";
          backtrace =
            Option.bind (Json.member "backtrace" e) Json.to_string_opt;
        })
  | Some "overloaded" ->
      let int name =
        Option.value ~default:0
          (Option.bind (Json.member name j) Json.to_int_opt)
      in
      Overloaded { depth = int "depth"; capacity = int "capacity" }
  | _ -> err "bad response status"
