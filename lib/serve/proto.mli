(** The serve wire protocol: length-prefixed JSON frames, one
    request/response exchange per connection.

    Frames are a 4-byte big-endian length followed by that many bytes of
    JSON, capped at {!max_frame}; requests and responses round-trip
    through {!Json.t} so [request_of_json (request_to_json r)] preserves
    every field (asserted by the serve tests). *)

val max_frame : int
(** 16 MB — bounds what a peer can make either side allocate. *)

val write_frame : Unix.file_descr -> string -> unit

val read_frame : Unix.file_descr -> string option
(** [None] on clean EOF before a complete frame; raises a structured
    [Invalid_config] {!Pf_util.Sim_error.Error} on an oversized length
    prefix. *)

(** {2 Requests} *)

type action = Synthesize | Evaluate | Explore_point | Status | Shutdown

val action_name : action -> string
val action_of_string : string -> action option

type program =
  | Named of string  (** a {!Pf_mibench.Registry} benchmark name *)
  | Inline of Pf_kir.Ast.program  (** a program shipped in the request *)

type isa = Arm | Fits

val isa_name : isa -> string

type request = {
  action : action;
  program : program;
  isa : isa;
  weighting : Pf_multi.Weighting.t;
  geometry : Pf_cache.Icache.config;
  dict_budget : int option;
  scale : int;
  unroll : int option;  (** [None]: registry default (1 for inline) *)
  max_steps : int option;
  budget_s : float option;  (** [None]: daemon default *)
  no_cache : bool;  (** bypass the artifact store for this request *)
}

val default_request : request
(** [evaluate crc32 arm @ 16K] with every option defaulted — the base
    clients build concrete requests from. *)

val request_to_json : request -> Json.t

val request_of_json : Json.t -> request
(** Raises a structured [Invalid_config] {!Pf_util.Sim_error.Error}
    naming the offending field on a malformed request — the daemon turns
    that into an error reply, never a dropped connection. *)

val geometry_to_json : Pf_cache.Icache.config -> Json.t

val geometry_of_json : Json.t -> Pf_cache.Icache.config
(** Validates via {!Pf_cache.Icache.validate}. *)

(** {2 Responses} *)

type response =
  | Ok_reply of { result : Json.t; cached : bool; degraded : bool }
  | Error_reply of Pf_util.Sim_error.t
  | Overloaded of { depth : int; capacity : int }
      (** admission queue full — retry later; carries the queue state the
          refusal was based on *)

val response_to_json : response -> Json.t
val response_of_json : Json.t -> response
