(* Bounded retry with exponential backoff, for the two places the serve
   stack meets genuinely transient failure: store I/O hit by interrupted
   syscalls, and clients connecting to a daemon that is still binding its
   socket.  Deterministic compute never retries — a simulation that
   raised once raises identically forever, so retrying it only burns the
   budget. *)

type policy = {
  attempts : int;
  base_delay_s : float;
  max_delay_s : float;
}

let default_policy = { attempts = 4; base_delay_s = 0.01; max_delay_s = 0.5 }

let transient_unix_error = function
  | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNREFUSED
  | Unix.ECONNRESET | Unix.ENOENT ->
      (* ENOENT/ECONNREFUSED: the daemon's socket is not bound *yet* —
         transient from a connecting client's point of view *)
      true
  | _ -> false

let is_transient = function
  | Unix.Unix_error (e, _, _) -> transient_unix_error e
  | _ -> false

let delay_s policy attempt =
  Float.min policy.max_delay_s
    (policy.base_delay_s *. Float.pow 2. (float_of_int attempt))

let with_backoff ?(policy = default_policy) ?(is_transient = is_transient)
    ~where f =
  if policy.attempts < 1 then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config
      ~where:"serve.retry" "policy allows %d attempts" policy.attempts;
  let rec go attempt =
    match f () with
    | v -> v
    | exception e when is_transient e && attempt + 1 < policy.attempts ->
        Unix.sleepf (delay_s policy attempt);
        go (attempt + 1)
    | exception e when is_transient e ->
        Pf_util.Sim_error.raisef Pf_util.Sim_error.Internal ~where
          "still failing after %d attempts: %s" policy.attempts
          (Printexc.to_string e)
  in
  go 0
