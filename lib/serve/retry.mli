(** Bounded retry with exponential backoff for transient failures.

    Used where the serve stack touches the outside world — store I/O and
    client connects to a daemon that has not finished binding its socket.
    Deterministic simulation failures are {e never} transient and never
    retried through this. *)

type policy = {
  attempts : int;  (** total tries, including the first *)
  base_delay_s : float;  (** delay before try 2; doubles per attempt *)
  max_delay_s : float;  (** backoff ceiling *)
}

val default_policy : policy
(** 4 attempts, 10 ms base, 500 ms cap. *)

val is_transient : exn -> bool
(** The default classifier: [Unix_error] with [EINTR], [EAGAIN],
    [EWOULDBLOCK], [ECONNREFUSED], [ECONNRESET] or [ENOENT] (the last two
    cover a daemon socket that is not bound yet). *)

val delay_s : policy -> int -> float
(** Backoff before retrying after 0-indexed attempt [n]. *)

val with_backoff :
  ?policy:policy ->
  ?is_transient:(exn -> bool) ->
  where:string ->
  (unit -> 'a) ->
  'a
(** Run [f], retrying transient failures with exponential backoff.
    Non-transient exceptions propagate immediately; exhausting the
    attempts raises a structured [Internal] {!Pf_util.Sim_error.Error}
    naming [where] and the final failure. *)
