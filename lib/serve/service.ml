(* Request evaluation: cache keys, the compute paths, and the
   degradation ladder.  Pure with respect to the daemon — everything
   stateful (socket, admission queue, counters) lives in {!Daemon}; this
   module maps one request to one response given a store handle, so tests
   can drive it without a socket. *)

module SE = Pf_util.Sim_error

let err fmt = SE.raisef SE.Invalid_config ~where:"serve.service" fmt

(* ---- request resolution ---- *)

type resolved = {
  r_program : Pf_kir.Ast.program;
  r_name : string;
  r_unroll : int;
}

let resolve (req : Proto.request) =
  match req.Proto.program with
  | Proto.Inline p ->
      {
        r_program = p;
        r_name = "inline";
        r_unroll = Option.value ~default:1 req.Proto.unroll;
      }
  | Proto.Named n ->
      let b = Pf_mibench.Registry.find_exn n in
      {
        r_program = b.Pf_mibench.Registry.program ~scale:req.Proto.scale;
        r_name = b.Pf_mibench.Registry.name;
        r_unroll =
          Option.value ~default:b.Pf_mibench.Registry.unroll req.Proto.unroll;
      }

(* ---- cache keys ---- *)

(* The key preimage is a canonical line list over exactly the fields that
   can change the result of the action.  The program enters by *content*
   (MD5 of its canonical KIR encoding, already specialized to the request
   scale), so a registry name and an identical inline shipment share one
   entry; fields irrelevant to an action (geometry for [synthesize]) stay
   out so they cannot fragment the cache. *)
let cache_key (req : Proto.request) =
  let r = resolve req in
  let geom_line (g : Pf_cache.Icache.config) =
    Printf.sprintf "geometry=%d/%d/%d" g.Pf_cache.Icache.size_bytes
      g.Pf_cache.Icache.block_bytes g.Pf_cache.Icache.assoc
  in
  let opt_int name = function
    | None -> name ^ "=none"
    | Some i -> Printf.sprintf "%s=%d" name i
  in
  let common =
    [
      "powerfits-serve/1";
      "action=" ^ Proto.action_name req.Proto.action;
      "program=" ^ Kir_codec.digest r.r_program;
      Printf.sprintf "unroll=%d" r.r_unroll;
      opt_int "max_steps" req.Proto.max_steps;
    ]
  in
  let fits_fields =
    [
      "weighting=" ^ Pf_multi.Weighting.to_string req.Proto.weighting;
      opt_int "dict_budget" req.Proto.dict_budget;
    ]
  in
  let lines =
    match req.Proto.action with
    | Proto.Synthesize -> common @ fits_fields
    | Proto.Evaluate ->
        common
        @ [ "isa=" ^ Proto.isa_name req.Proto.isa; geom_line req.Proto.geometry ]
        @ (if req.Proto.isa = Proto.Fits then fits_fields else [])
    | Proto.Explore_point ->
        common @ [ geom_line req.Proto.geometry ] @ fits_fields
    | (Proto.Status | Proto.Shutdown) as a ->
        err "action %s has no cache key" (Proto.action_name a)
  in
  String.concat "\n" lines

(* ---- result encoders ---- *)

let power_json (p : Pf_power.Account.report) =
  Json.Obj
    [
      ("switching", Json.Float p.Pf_power.Account.switching);
      ("internal", Json.Float p.Pf_power.Account.internal);
      ("leakage", Json.Float p.Pf_power.Account.leakage);
      ("total", Json.Float p.Pf_power.Account.total);
      ("peak_power", Json.Float p.Pf_power.Account.peak_power);
      ("cycles", Json.Int p.Pf_power.Account.cycles);
    ]

let output_md5 s = Digest.to_hex (Digest.string s)

(* ---- compute paths ---- *)

let synthesis_of ~(req : Proto.request) ~(r : resolved) ?max_steps ?deadline
    image =
  let dyn_counts, output =
    Pf_fits.Synthesis.dyn_counts_of_run ?max_steps ?deadline image
  in
  let dyn_insns = Array.fold_left ( + ) 0 dyn_counts in
  let p_mult =
    Pf_multi.Weighting.multiplier req.Proto.weighting ~name:r.r_name ~dyn_insns
  in
  let syn =
    Pf_fits.Synthesis.synthesize_suite
      ?dict_budget:req.Proto.dict_budget
      [ { Pf_fits.Synthesis.p_image = image; p_dyn_counts = dyn_counts; p_mult } ]
  in
  (syn, dyn_insns, output)

let compute_synthesize ~(req : Proto.request) ~(r : resolved) ?max_steps
    ?deadline () =
  let image = Pf_armgen.Compile.program ~unroll:r.r_unroll r.r_program in
  let syn, dyn_insns, output = synthesis_of ~req ~r ?max_steps ?deadline image in
  Json.Obj
    [
      ("program", Json.String r.r_name);
      ("ais_opdefs", Json.Int (List.length syn.Pf_fits.Synthesis.ais));
      ( "candidates_considered",
        Json.Int syn.Pf_fits.Synthesis.candidates_considered );
      ("datapath_off", Json.Float syn.Pf_fits.Synthesis.datapath_off);
      ("dict_spilled", Json.Int syn.Pf_fits.Synthesis.dict_spilled);
      ("dyn_insns", Json.Int dyn_insns);
      ("output_md5", Json.String (output_md5 output));
    ]

let compute_evaluate ~(req : Proto.request) ~(r : resolved) ?max_steps ?deadline
    () =
  let image = Pf_armgen.Compile.program ~unroll:r.r_unroll r.r_program in
  match req.Proto.isa with
  | Proto.Arm ->
      let res =
        Pf_cpu.Arm_run.run ~cache_cfg:req.Proto.geometry ?max_steps ?deadline
          image
      in
      Json.Obj
        [
          ("program", Json.String r.r_name);
          ("isa", Json.String "arm");
          ("instructions", Json.Int res.Pf_cpu.Arm_run.instructions);
          ("cycles", Json.Int res.Pf_cpu.Arm_run.cycles);
          ("ipc", Json.Float res.Pf_cpu.Arm_run.ipc);
          ("fetch_accesses", Json.Int res.Pf_cpu.Arm_run.fetch_accesses);
          ("cache_accesses", Json.Int res.Pf_cpu.Arm_run.cache_accesses);
          ("cache_misses", Json.Int res.Pf_cpu.Arm_run.cache_misses);
          ( "miss_rate_pm",
            Json.Float res.Pf_cpu.Arm_run.miss_rate_per_million );
          ( "dcache_miss_rate_pm",
            Json.Float res.Pf_cpu.Arm_run.dcache_miss_rate_pm );
          ("power", power_json res.Pf_cpu.Arm_run.power);
          ("output_md5", Json.String (output_md5 res.Pf_cpu.Arm_run.output));
        ]
  | Proto.Fits ->
      let syn, _, _ = synthesis_of ~req ~r ?max_steps ?deadline image in
      let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
      let res =
        Pf_fits.Run.run ~cache_cfg:req.Proto.geometry ?max_steps ?deadline tr
      in
      Json.Obj
        [
          ("program", Json.String r.r_name);
          ("isa", Json.String "fits");
          ("instructions", Json.Int res.Pf_fits.Run.arm_instructions);
          ("fits_instructions", Json.Int res.Pf_fits.Run.fits_instructions);
          ( "dyn_one_to_one_pct",
            Json.Float res.Pf_fits.Run.dyn_one_to_one_pct );
          ("cycles", Json.Int res.Pf_fits.Run.cycles);
          ("ipc", Json.Float res.Pf_fits.Run.ipc);
          ("fetch_accesses", Json.Int res.Pf_fits.Run.fetch_accesses);
          ("cache_accesses", Json.Int res.Pf_fits.Run.cache_accesses);
          ("cache_misses", Json.Int res.Pf_fits.Run.cache_misses);
          ( "miss_rate_pm",
            Json.Float res.Pf_fits.Run.miss_rate_per_million );
          ( "dcache_miss_rate_pm",
            Json.Float res.Pf_fits.Run.dcache_miss_rate_pm );
          ("dict_spilled", Json.Int syn.Pf_fits.Synthesis.dict_spilled);
          ("power", power_json res.Pf_fits.Run.power);
          ("output_md5", Json.String (output_md5 res.Pf_fits.Run.output));
        ]

(* Recording key for explore-point trace sharing: exactly what
   determines a recording — program content (scale-specialized), unroll,
   effective max_steps, dictionary budget.  Geometry deliberately stays
   out: that is the axis requests share across.  A deadline never enters
   either — it aborts a recording, it cannot truncate one. *)
let share_key ~(req : Proto.request) ~(r : resolved) ~max_steps =
  String.concat "\n"
    [
      "powerfits-trace/1";
      "program=" ^ Kir_codec.digest r.r_program;
      Printf.sprintf "unroll=%d" r.r_unroll;
      (match max_steps with
      | None -> "max_steps=none"
      | Some i -> Printf.sprintf "max_steps=%d" i);
      (match req.Proto.dict_budget with
      | None -> "dict_budget=none"
      | Some i -> Printf.sprintf "dict_budget=%d" i);
    ]

let compute_explore_point ?traces ~(req : Proto.request) ~(r : resolved)
    ?max_steps ?deadline () =
  let bench : Pf_mibench.Registry.benchmark =
    {
      Pf_mibench.Registry.name = r.r_name;
      result_name = r.r_name;
      category = "serve";
      program = (fun ~scale:_ -> r.r_program);
      power_study = false;
      unroll = r.r_unroll;
    }
  in
  let dict_budgets = [ req.Proto.dict_budget ] in
  let record () =
    Pf_dse.Explore.record ?max_steps ?deadline ~dict_budgets bench
  in
  let recording, trace_shared =
    match traces with
    | None -> (record (), false)
    | Some ts ->
        Trace_share.find_or_record ts ~key:(share_key ~req ~r ~max_steps)
          record
  in
  let run =
    Pf_dse.Explore.sweep_recording ~geometries:[ req.Proto.geometry ]
      recording
  in
  let point_json (p : Pf_dse.Explore.point) =
    let m = p.Pf_dse.Explore.metrics in
    Json.Obj
      [
        ( "variant",
          Json.String (Pf_dse.Explore.variant_label p.Pf_dse.Explore.variant) );
        ("geometry", Proto.geometry_to_json p.Pf_dse.Explore.geometry);
        ("instructions", Json.Int m.Pf_dse.Explore.instructions);
        ("cycles", Json.Int m.Pf_dse.Explore.cycles);
        ("ipc", Json.Float m.Pf_dse.Explore.ipc);
        ("cache_misses", Json.Int m.Pf_dse.Explore.cache_misses);
        ("miss_rate_pm", Json.Float m.Pf_dse.Explore.miss_rate_pm);
        ("gate_count", Json.Int m.Pf_dse.Explore.gate_count);
        ("power", power_json m.Pf_dse.Explore.power);
      ]
  in
  Json.Obj
    [
      ("program", Json.String r.r_name);
      ( "points",
        Json.List (List.map point_json run.Pf_dse.Explore.points) );
      ("replayed_events", Json.Int run.Pf_dse.Explore.replayed_events);
      ( "outputs_consistent",
        Json.Bool run.Pf_dse.Explore.outputs_consistent );
      ("trace_shared", Json.Bool trace_shared);
    ]

(* ---- degradation ladder ---- *)

let default_budget_s = 60.

let compute ?traces ?(budget_s = default_budget_s) ?default_max_steps
    (req : Proto.request) =
  let attempt (req : Proto.request) =
    SE.protect ~where:"serve.service" (fun () ->
        let r = resolve req in
        let max_steps =
          match req.Proto.max_steps with
          | Some _ as m -> m
          | None -> default_max_steps
        in
        let budget = Option.value ~default:budget_s req.Proto.budget_s in
        let deadline =
          if budget > 0. then Some (Pf_util.Deadline.after ~seconds:budget)
          else None
        in
        match req.Proto.action with
        | Proto.Synthesize -> compute_synthesize ~req ~r ?max_steps ?deadline ()
        | Proto.Evaluate -> compute_evaluate ~req ~r ?max_steps ?deadline ()
        | Proto.Explore_point ->
            compute_explore_point ?traces ~req ~r ?max_steps ?deadline ()
        | (Proto.Status | Proto.Shutdown) as a ->
            err "action %s is not computable" (Proto.action_name a))
  in
  (* over-budget requests degrade to half workload rather than failing:
     halve the scale while possible, each attempt under a fresh budget.
     Only a watchdog trip degrades — a deterministic simulation error
     repeats identically at any scale, so retrying it is pure waste. *)
  let rec ladder req degraded =
    match attempt req with
    | Ok result -> Ok (result, degraded)
    | Error { SE.kind = SE.Watchdog_timeout; _ }
      when req.Proto.scale > 1
           && (match req.Proto.program with
              | Proto.Named _ -> true
              | Proto.Inline _ -> false) ->
        ladder { req with Proto.scale = req.Proto.scale / 2 } true
    | Error e -> Error e
  in
  ladder req false

(* ---- cache envelope ---- *)

(* What a store payload holds: the result plus the degraded flag, so a
   cache hit replays the original reply exactly. *)
let envelope ~degraded result =
  Json.to_string (Json.Obj [ ("degraded", Json.Bool degraded); ("result", result) ])

let of_envelope s =
  match Json.of_string s with
  | Error msg -> err "corrupt cache payload: %s" msg
  | Ok j ->
      let degraded =
        Option.value ~default:false
          (Option.bind (Json.member "degraded" j) Json.to_bool_opt)
      in
      let result = Option.value ~default:Json.Null (Json.member "result" j) in
      (result, degraded)

(* ---- one request end to end ---- *)

let handle ?store ?inflight ?traces ?budget_s ?default_max_steps
    (req : Proto.request) =
  match req.Proto.action with
  | Proto.Status | Proto.Shutdown ->
      Proto.Error_reply
        {
          SE.kind = SE.Invalid_config;
          where = "serve.service";
          detail =
            Proto.action_name req.Proto.action
            ^ " is handled by the daemon, not the compute service";
          backtrace = None;
        }
  | Proto.Synthesize | Proto.Evaluate | Proto.Explore_point -> (
      let use_cache = store <> None && not req.Proto.no_cache in
      match SE.protect ~where:"serve.service" (fun () -> cache_key req) with
      | Error e -> Proto.Error_reply e
      | Ok key ->
          let lookup_or_compute () =
            let cached_hit =
              if not use_cache then None
              else
                Option.bind store (fun s ->
                    Retry.with_backoff ~where:"serve.store" (fun () ->
                        Store.get s ~key))
            in
            match cached_hit with
            | Some payload -> (
                match SE.protect ~where:"serve.service" (fun () ->
                          of_envelope payload)
                with
                | Ok (result, degraded) ->
                    Proto.Ok_reply { result; cached = true; degraded }
                | Error e -> Proto.Error_reply e)
            | None -> (
                match compute ?traces ?budget_s ?default_max_steps req with
                | Error e -> Proto.Error_reply e
                | Ok (result, degraded) ->
                    (if use_cache then
                       match store with
                       | Some s ->
                           Retry.with_backoff ~where:"serve.store" (fun () ->
                               Store.put s ~key (envelope ~degraded result))
                       | None -> ());
                    Proto.Ok_reply { result; cached = false; degraded })
          in
          (* coalescing is safe even under [no_cache]: that flag bypasses
             possibly-stale *store* entries, but a concurrent in-flight
             computation is fresh by definition *)
          (match inflight with
          | None -> lookup_or_compute ()
          | Some infl -> (
              match Inflight.run infl ~key lookup_or_compute with
              | Inflight.Led resp | Inflight.Joined resp -> resp)))
