(** Request evaluation: cache keys, compute paths and the degradation
    ladder.  Stateless apart from the store handle it is given — the
    daemon owns sockets, queueing and counters; tests drive this
    directly. *)

val cache_key : Proto.request -> string
(** Canonical key preimage for a computable request: exactly the fields
    that can change the result, with the program entering by content
    (MD5 of its canonical KIR encoding at the request scale) so a
    registry name and an identical inline program share one cache entry.
    Raises a structured [Invalid_config] {!Pf_util.Sim_error.Error} for
    [Status]/[Shutdown], which have no result to cache. *)

val default_budget_s : float
(** Per-request wall-clock budget when neither the request nor the
    daemon sets one: 60 s. *)

val compute :
  ?traces:Trace_share.t ->
  ?budget_s:float ->
  ?default_max_steps:int ->
  Proto.request ->
  (Json.t * bool, Pf_util.Sim_error.t) result
(** Run the request's compute path under {!Pf_util.Sim_error.protect}
    and a fresh {!Pf_util.Deadline} per attempt.  The bool is the
    degraded flag: a [Watchdog_timeout] on a named benchmark with
    [scale > 1] retries at half scale (repeatedly, down to 1) instead of
    failing.  Deterministic simulation errors never retry.  With
    [traces], an explore-point request reuses (or contributes) the
    program's recorded executions, keyed by program content, unroll,
    effective max_steps and dictionary budget — never geometry — so
    requests walking a geometry grid record once and sweep many; the
    reply's [trace_shared] field says which happened.  Results are
    bit-identical with or without sharing (replays are read-only on the
    recording). *)

val envelope : degraded:bool -> Json.t -> string
(** Store payload for a computed result: result JSON plus the degraded
    flag, so a later cache hit replays the original reply exactly. *)

val of_envelope : string -> Json.t * bool
(** Inverse of {!envelope}; raises a structured error on malformed
    payload bytes (which {!handle} maps to an error reply). *)

val handle :
  ?store:Store.t ->
  ?inflight:Proto.response Inflight.t ->
  ?traces:Trace_share.t ->
  ?budget_s:float ->
  ?default_max_steps:int ->
  Proto.request ->
  Proto.response
(** One computable request end to end: key → verified store lookup
    (transient I/O retried with backoff) → on miss, {!compute} and
    commit.  With [inflight], the lookup-or-compute step is coalesced:
    concurrent calls with the same cache key block on the first and
    share its response verbatim (coalescing applies even under
    [no_cache] — that flag bypasses possibly-stale store entries, but an
    in-flight computation is fresh by definition).  [Status]/[Shutdown]
    get an error reply — the daemon answers those itself.  Never
    raises. *)
