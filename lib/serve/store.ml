(* Crash-safe content-addressed artifact store.

   Layout:
     <dir>/objects/<md5-of-key>.rec     committed records
     <dir>/quarantine/<name>            records that failed verification
     <dir>/index.json                   advisory listing, rebuilt on open

   Every record is written with {!Pf_util.Atomic_file} (temp + fsync +
   rename), so a crash leaves either the old committed bytes or the new
   committed bytes at the final name — never a torn mixture — plus at
   worst a stale temp file.  Verification is therefore only needed
   against *storage* faults (bit rot, truncation, hostile edits), and the
   record format makes every such fault detectable:

     "PFAS" | version=0x01 | be32 keylen | be32 paylen | key | payload | be32 crc

   where crc is CRC-32 of everything between the magic and the trailer.
   A reader checks exact file length, magic, version, lengths and CRC;
   any single-byte flip or truncation fails at least one check (CRC
   catches all single-bit and single-byte errors; the exact-length check
   catches truncation and extension even across the CRC's blind spots).

   The store never deletes a failing record — it moves it to
   quarantine/, so forensics keep the bytes while lookups can never
   return them. *)

type t = {
  dir : string;
  fsync : bool;
  crash : (Pf_util.Atomic_file.crash_point -> bool) option;
  log : string -> unit;
  m : Mutex.t;
  mutable quarantined : int;  (* lifetime, including recovery *)
  mutable puts : int;
  mutable closed : bool;
}

type recovery = {
  entries : int;
  recovered_quarantined : int;
  swept_temps : int;
}

let magic = "PFAS"
let version = '\x01'

let err fmt =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config
    ~where:"serve.store" fmt

let objects_dir t = Filename.concat t.dir "objects"
let quarantine_dir t = Filename.concat t.dir "quarantine"
let index_path t = Filename.concat t.dir "index.json"
let key_hash key = Digest.to_hex (Digest.string key)

let record_path t key =
  Filename.concat (objects_dir t) (key_hash key ^ ".rec")

(* ---- record codec ---- *)

let be32 n =
  if n < 0 || n > 0xFFFFFFFF then err "field length %d out of range" n;
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.to_string b

let read_be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let encode_record ~key payload =
  let body =
    Printf.sprintf "%c%s%s%s%s" version
      (be32 (String.length key))
      (be32 (String.length payload))
      key payload
  in
  let crc = Pf_util.Crc32.string body in
  magic ^ body ^ be32 crc

let decode_record s =
  let len = String.length s in
  let header = 4 + 1 + 4 + 4 in
  if len < header + 4 then Error "record shorter than header"
  else if String.sub s 0 4 <> magic then Error "bad magic"
  else if s.[4] <> version then
    Error (Printf.sprintf "unknown version 0x%02x" (Char.code s.[4]))
  else
    let keylen = read_be32 s 5 in
    let paylen = read_be32 s 9 in
    if len <> header + keylen + paylen + 4 then
      Error
        (Printf.sprintf "length mismatch: %d bytes for keylen=%d paylen=%d"
           len keylen paylen)
    else
      let crc_stored = read_be32 s (len - 4) in
      let crc = Pf_util.Crc32.string ~pos:4 ~len:(len - 8) s in
      if crc <> crc_stored then
        Error (Printf.sprintf "crc mismatch: stored %08x computed %08x"
                 crc_stored crc)
      else
        Ok (String.sub s 13 keylen, String.sub s (13 + keylen) paylen)

(* ---- filesystem helpers ---- *)

let mkdir_p path =
  let rec go p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let list_dir dir =
  match Sys.readdir dir with
  | names ->
      Array.sort compare names;
      Array.to_list names
  | exception Sys_error _ -> []

(* ---- quarantine ---- *)

let quarantine_locked t ~name ~reason =
  let src = Filename.concat (objects_dir t) name in
  let dst = Filename.concat (quarantine_dir t) name in
  (try Unix.rename src dst
   with Unix.Unix_error _ -> (try Unix.unlink src with Unix.Unix_error _ -> ()));
  t.quarantined <- t.quarantined + 1;
  t.log
    (Printf.sprintf "store: quarantined=1 record=%s reason=%s" name reason)

(* ---- index ---- *)

let write_index_locked t =
  let names =
    list_dir (objects_dir t)
    |> List.filter (fun n -> Filename.check_suffix n ".rec")
  in
  let json =
    Json.Obj
      [
        ("schema", Json.Int 1);
        ("entries", Json.Int (List.length names));
        ("quarantined_total", Json.Int t.quarantined);
        ("records", Json.List (List.map (fun n -> Json.String n) names));
      ]
  in
  Pf_util.Atomic_file.write ~fsync:t.fsync ~path:(index_path t)
    (Json.to_string json ^ "\n")

(* ---- lifecycle ---- *)

let recover_locked t =
  (* sweep stale temp files first: they are residue of crashed writes,
     never observable through the committed namespace *)
  let swept = ref 0 in
  List.iter
    (fun name ->
      if Pf_util.Atomic_file.is_temp name then begin
        (try Unix.unlink (Filename.concat (objects_dir t) name)
         with Unix.Unix_error _ -> ());
        incr swept
      end)
    (list_dir (objects_dir t));
  let entries = ref 0 and bad = ref 0 in
  List.iter
    (fun name ->
      if Filename.check_suffix name ".rec" then begin
        let path = Filename.concat (objects_dir t) name in
        match decode_record (read_file path) with
        | Ok (key, _) when key_hash key ^ ".rec" = name -> incr entries
        | Ok (_, _) ->
            incr bad;
            quarantine_locked t ~name ~reason:"key-hash-mismatch"
        | Error reason ->
            incr bad;
            quarantine_locked t ~name ~reason
        | exception Sys_error _ ->
            incr bad;
            quarantine_locked t ~name ~reason:"unreadable"
      end)
    (list_dir (objects_dir t));
  { entries = !entries; recovered_quarantined = !bad; swept_temps = !swept }

let open_ ?(fsync = true) ?crash ?(log = fun _ -> ()) dir =
  mkdir_p (Filename.concat dir "objects");
  mkdir_p (Filename.concat dir "quarantine");
  let t =
    {
      dir;
      fsync;
      crash;
      log;
      m = Mutex.create ();
      quarantined = 0;
      puts = 0;
      closed = false;
    }
  in
  let recovery = recover_locked t in
  write_index_locked t;
  (t, recovery)

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let check_open t = if t.closed then err "store %s is closed" t.dir

let put t ~key payload =
  locked t (fun () ->
      check_open t;
      Pf_util.Atomic_file.write ~fsync:t.fsync ?crash:t.crash
        ~path:(record_path t key)
        (encode_record ~key payload);
      t.puts <- t.puts + 1)

let get t ~key =
  locked t (fun () ->
      check_open t;
      let path = record_path t key in
      if not (Sys.file_exists path) then None
      else
        match decode_record (read_file path) with
        | Ok (k, payload) when k = key -> Some payload
        | Ok (k, _) ->
            (* an md5 collision or a record renamed into the wrong slot:
               either way not this key's data *)
            quarantine_locked t ~name:(Filename.basename path)
              ~reason:(Printf.sprintf "key mismatch (%s)" (key_hash k));
            None
        | Error reason ->
            quarantine_locked t ~name:(Filename.basename path) ~reason;
            None
        | exception Sys_error _ ->
            quarantine_locked t ~name:(Filename.basename path)
              ~reason:"unreadable";
            None)

let mem t ~key = get t ~key <> None

let count t =
  locked t (fun () ->
      list_dir (objects_dir t)
      |> List.filter (fun n -> Filename.check_suffix n ".rec")
      |> List.length)

let quarantined t = locked t (fun () -> t.quarantined)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        write_index_locked t;
        if t.fsync then Pf_util.Atomic_file.fsync_dir t.dir;
        t.closed <- true
      end)
