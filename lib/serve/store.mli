(** Crash-safe content-addressed artifact store.

    Maps an opaque request key (the canonical byte string
    {!Service.cache_key} builds from program hash, ISA spec, weighting
    and geometry) to a cached result payload.  Records live one per file
    under [<dir>/objects/], named by the MD5 of the key, written
    atomically ({!Pf_util.Atomic_file}) and framed with a magic, explicit
    lengths and a CRC-32 trailer, so a reader can always tell a committed
    record from a damaged one.

    Failure discipline: a record that fails verification — on the opening
    recovery scan or on any later {!get} — is moved to
    [<dir>/quarantine/] (never deleted, never decoded, never served) and
    the lookup misses.  Committed records survive any crash point of the
    writer; torn writes are invisible because publication is a rename. *)

type t

type recovery = {
  entries : int;  (** verified committed records found on open *)
  recovered_quarantined : int;
      (** records that failed verification during the scan *)
  swept_temps : int;  (** stale atomic-write temp files removed *)
}

val open_ :
  ?fsync:bool ->
  ?crash:(Pf_util.Atomic_file.crash_point -> bool) ->
  ?log:(string -> unit) ->
  string ->
  t * recovery
(** [open_ dir] creates the layout if needed, sweeps stale temp files,
    verifies every record (quarantining failures) and rewrites the
    advisory index.  [fsync] (default true) governs durability of every
    subsequent write; tests pass [false] for speed.  [crash] is threaded
    to {!Pf_util.Atomic_file.write} on every {!put} — the store-fault
    injector's hook.  [log] receives one line per quarantined record. *)

val put : t -> key:string -> string -> unit
(** Atomically commit [payload] under [key], replacing any previous
    record.  May raise {!Pf_util.Atomic_file.Crash} when a crash hook
    fires, or a [Unix.Unix_error] on real I/O failure. *)

val get : t -> key:string -> string option
(** Verified lookup: [Some payload] only if the record decodes, its CRC
    matches and its embedded key equals [key]; otherwise the record (if
    any) is quarantined and the result is [None]. *)

val mem : t -> key:string -> bool

val count : t -> int
(** Committed records currently on disk. *)

val quarantined : t -> int
(** Records quarantined over this handle's lifetime (including its
    opening scan). *)

val close : t -> unit
(** Rewrite and fsync the index, fsync the store directory, and refuse
    further operations.  Idempotent. *)

(** {2 Record codec} — exposed for the fault injector and tests. *)

val encode_record : key:string -> string -> string

val decode_record : string -> (string * string, string) result
(** [(key, payload)], or a human-readable reason the bytes are not a
    committed record.  Total: never raises on arbitrary input. *)

val key_hash : string -> string
(** MD5 hex of a key — the record's file basename. *)
