(* Recorded-trace sharing across explore-point requests.

   An explore-point request records the program's executions (one per
   ISA) and then evaluates ONE geometry from them — so a client walking a
   geometry grid pays the recording once per point unless the daemon
   remembers it.  This table memoizes {!Pf_dse.Explore.recording}s under
   a key covering exactly what determines a recording — program content
   (scale-specialized), unroll, effective max_steps, dictionary budget —
   and geometry deliberately not, so grid walks share.

   Recordings are immutable once built and sweeping only reads them, so
   one recording can serve concurrent worker domains; the table itself is
   mutex-protected.  The recording computation runs OUTSIDE the lock:
   two workers racing on the same fresh key may both record (the results
   are bit-identical; the first insert wins and both use it), which
   wastes at most one recording and never serializes unrelated
   requests.  Bounded by LRU eviction — traces are the largest objects
   the daemon holds. *)

type entry = {
  recording : Pf_dse.Explore.recording;
  mutable stamp : int; (* recency tick for LRU eviction *)
}

type t = {
  m : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable shared : int;
  mutable recorded : int;
}

let default_capacity = 8

let create ?(capacity = default_capacity) () =
  if capacity < 1 then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config
      ~where:"serve.trace_share" "capacity must be >= 1 (got %d)" capacity;
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 16;
    capacity;
    tick = 0;
    shared = 0;
    recorded = 0;
  }

let evict_lru t =
  if Hashtbl.length t.tbl > t.capacity then begin
    let victim = ref None in
    Hashtbl.iter
      (fun key e ->
        match !victim with
        | Some (_, stamp) when stamp <= e.stamp -> ()
        | _ -> victim := Some (key, e.stamp))
      t.tbl;
    match !victim with
    | Some (key, _) -> Hashtbl.remove t.tbl key
    | None -> ()
  end

let find_or_record t ~key f =
  Mutex.lock t.m;
  t.tick <- t.tick + 1;
  let hit =
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
        e.stamp <- t.tick;
        t.shared <- t.shared + 1;
        Some e.recording
    | None -> None
  in
  Mutex.unlock t.m;
  match hit with
  | Some recording -> (recording, true)
  | None ->
      let recording = f () in
      Mutex.lock t.m;
      t.tick <- t.tick + 1;
      let winner =
        (* a racing worker may have inserted the same key while we were
           recording; its recording is bit-identical — use it and drop
           ours so the table never holds duplicates *)
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
            e.stamp <- t.tick;
            e.recording
        | None ->
            Hashtbl.replace t.tbl key { recording; stamp = t.tick };
            t.recorded <- t.recorded + 1;
            evict_lru t;
            recording
      in
      Mutex.unlock t.m;
      (winner, false)

let entries t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.m;
  n

let stats t =
  Mutex.lock t.m;
  let s = (t.shared, t.recorded, Hashtbl.length t.tbl) in
  Mutex.unlock t.m;
  s
