(** Memoized {!Pf_dse.Explore.recording}s, shared across explore-point
    requests.

    A recording (the program's per-ISA executions and traces) is a
    function of program content, unroll, effective max_steps and
    dictionary budget — never of cache geometry — so a client walking a
    geometry grid needs it recorded once, not once per point.  The table
    is mutex-protected and LRU-bounded; recordings are immutable, so a
    shared one can be swept by concurrent worker domains. *)

type t

val default_capacity : int
(** 8 — traces are the largest objects the daemon holds. *)

val create : ?capacity:int -> unit -> t

val find_or_record :
  t -> key:string -> (unit -> Pf_dse.Explore.recording) ->
  Pf_dse.Explore.recording * bool
(** [find_or_record t ~key f] returns the memoized recording for [key]
    (flag [true]), or runs [f] to record, inserts, and returns it (flag
    [false]).  [f] runs outside the table lock: two workers racing on
    the same fresh key may both record — bit-identical results, first
    insert wins, both callers share the winner. *)

val entries : t -> int

val stats : t -> int * int * int
(** [(shared, recorded, entries)]: lookups served from the table,
    recordings inserted, and current size. *)
