(* Crash-safe file publication: write a unique temp file, fsync it,
   rename it over the destination, fsync the directory.  A reader can
   then never observe a half-written destination file — the worst a crash
   leaves behind is a stale temp file next to it, which recovery sweeps.

   The [crash] hook is the store-fault injector's entry point: it is
   consulted at each point where a real process could die, and when it
   answers [true] the write stops *exactly there* — file descriptors
   closed (as the kernel would on process death), temp files left in
   place, nothing cleaned up — and {!Crash} is raised so the caller (a
   fault campaign, or the [--crash-at] CLI hook, which exits the process
   instead) can inspect the torn state.  Without a hook the stages are
   zero-cost. *)

type crash_point = Mid_write | After_write | Before_rename | After_rename

let crash_point_name = function
  | Mid_write -> "mid-write"
  | After_write -> "after-write"
  | Before_rename -> "before-rename"
  | After_rename -> "after-rename"

let crash_point_of_string = function
  | "mid-write" -> Some Mid_write
  | "after-write" -> Some After_write
  | "before-rename" -> Some Before_rename
  | "after-rename" -> Some After_rename
  | _ -> None

let all_crash_points = [ Mid_write; After_write; Before_rename; After_rename ]

exception Crash of crash_point

(* Unique temp names: concurrent Pool workers may publish the same key at
   once; sharing one temp path would let writer A rename writer B's
   half-written bytes into place. *)
let seq = Atomic.make 0

let temp_path path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add seq 1)

let is_temp name =
  (* matches the [temp_path] shape anywhere in a directory scan *)
  let rec find i =
    i + 5 <= String.length name
    && (String.sub name i 5 = ".tmp." || find (i + 1))
  in
  find 0

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_all fd s pos len =
  let written = ref 0 in
  while !written < len do
    written :=
      !written + Unix.single_write_substring fd s (pos + !written) (len - !written)
  done

let write ?(fsync = true) ?crash ~path data =
  let crash_at p = match crash with Some f -> f p | None -> false in
  let tmp = temp_path path in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let die p =
    (* simulated process death: the kernel closes descriptors, nothing
       else happens — the torn temp file stays exactly as written *)
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (Crash p)
  in
  match
    let len = String.length data in
    let half = len / 2 in
    write_all fd data 0 half;
    if crash_at Mid_write then die Mid_write;
    write_all fd data half (len - half);
    if crash_at After_write then die After_write;
    if fsync then Unix.fsync fd;
    Unix.close fd;
    if crash_at Before_rename then raise (Crash Before_rename);
    Unix.rename tmp path;
    if crash_at After_rename then raise (Crash After_rename);
    if fsync then fsync_dir (Filename.dirname path)
  with
  | () -> ()
  | exception (Crash _ as c) -> raise c
  | exception e ->
      (* a real I/O failure: don't leave the temp file behind *)
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink tmp with Unix.Unix_error _ -> ());
      raise e
