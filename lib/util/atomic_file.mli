(** Atomic file publication (temp file + fsync + rename + directory
    fsync) with injectable crash points.

    Every file this repository publishes for later consumption — the
    artifact-store records, [BENCH_sweep.json], the explore [--csv] /
    [--json] emissions — goes through {!write}, so a crash at any instant
    leaves either the complete old content or the complete new content at
    [path], never a torn mixture.  The only residue a crash can leave is
    a stale [<path>.tmp.<pid>.<n>] sibling, recognizable with
    {!is_temp}. *)

(** Where a simulated crash strikes, in write order. *)
type crash_point =
  | Mid_write      (** half the bytes written to the temp file, no fsync *)
  | After_write    (** all bytes written, not yet fsynced or renamed *)
  | Before_rename  (** temp file durable, destination untouched *)
  | After_rename   (** renamed into place, directory entry not fsynced *)

val crash_point_name : crash_point -> string
val crash_point_of_string : string -> crash_point option
val all_crash_points : crash_point list

exception Crash of crash_point
(** Raised by {!write} when the [crash] hook fires, after leaving the
    filesystem exactly as a process death at that point would. *)

val write :
  ?fsync:bool ->
  ?crash:(crash_point -> bool) ->
  path:string ->
  string ->
  unit
(** [write ~path data] atomically replaces [path] with [data].  [fsync]
    (default true) makes the content and the rename durable; pass [false]
    for throwaway output where a machine crash may lose the file but can
    still never tear it.  [crash] is the fault-injection hook: it is
    asked at each {!crash_point} and a [true] answer aborts the write
    there, raising {!Crash}.  On a real I/O error the temp file is
    removed and the exception propagates. *)

val is_temp : string -> bool
(** Whether a file name looks like a {!write} temp file — what a recovery
    scan should sweep. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory's entry table (errors ignored:
    some filesystems reject directory fsync). *)
