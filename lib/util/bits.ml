let mask w =
  if w < 0 || w > 62 then invalid_arg "Bits.mask"
  else (1 lsl w) - 1

let extract x ~lo ~width = (x lsr lo) land mask width

let insert x ~lo ~width v =
  let m = mask width lsl lo in
  (x land lnot m) lor ((v land mask width) lsl lo)

let zero_extend ~width x = x land mask width

let sign_extend ~width x =
  let x = zero_extend ~width x in
  if x land (1 lsl (width - 1)) <> 0 then x - (1 lsl width) else x

let fits_unsigned ~width x = x >= 0 && x <= mask width

let fits_signed ~width x =
  let half = 1 lsl (width - 1) in
  x >= -half && x < half

let u32 x = x land 0xFFFF_FFFF

let rotate_right32 x r =
  let x = u32 x in
  let r = r land 31 in
  if r = 0 then x else u32 ((x lsr r) lor (x lsl (32 - r)))

(* branch-free SWAR popcount: the cache models call this twice per
   access (address and data-bus toggles), so it must be constant-time
   rather than a bit-at-a-time loop.  Summed over 32-bit halves to stay
   inside OCaml's 63-bit int literals. *)
let[@inline always] popcount x =
  let[@inline always] count32 x =
    let x = x - ((x lsr 1) land 0x5555_5555) in
    let x = (x land 0x3333_3333) + ((x lsr 2) land 0x3333_3333) in
    let x = (x + (x lsr 4)) land 0x0F0F_0F0F in
    ((x * 0x0101_0101) lsr 24) land 0xFF
  in
  count32 (x land 0xFFFF_FFFF) + count32 (x lsr 32)

let[@inline always] hamming a b = popcount (a lxor b)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  if not (is_power_of_two n) then invalid_arg "Bits.log2_exact"
  else
    let rec go k n = if n = 1 then k else go (k + 1) (n lsr 1) in
    go 0 n

let align_down x a = x land lnot (a - 1)

let to_signed32 x =
  let x = u32 x in
  if x land 0x8000_0000 <> 0 then x - (1 lsl 32) else x
