(* Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
   The artifact store frames every on-disk record with this checksum so a
   single flipped or missing byte is detected before the record is ever
   decoded; the same implementation backs the QCheck corruption
   properties, so the table is computed once and shared. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s pos len =
  let table = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let string ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    Sim_error.raisef Sim_error.Invalid_config ~where:"util.crc32"
      "crc32 substring [%d, %d+%d) outside a %d-byte string" pos pos len
      (String.length s);
  update 0 s pos len
