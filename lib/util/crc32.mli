(** CRC-32 (IEEE 802.3) checksums.

    Frames the artifact-store records on disk: a checksum over the whole
    record body means any single-byte flip or truncation is detected
    before a corrupt record can be decoded (the property
    test/test_serve.ml checks exhaustively). *)

val string : ?pos:int -> ?len:int -> string -> int
(** CRC-32 of a (sub)string, in [\[0, 0xFFFFFFFF\]].  Raises a structured
    [Invalid_config] {!Sim_error.Error} when the substring falls outside
    the string. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a running checksum: [string s] equals
    [update 0 s 0 (String.length s)]. *)
