(* Bechamel's monotonic clock stub reads CLOCK_MONOTONIC in nanoseconds;
   it is the only monotonic time source in the tree (Unix.gettimeofday is
   wall-clock and jumps with NTP). *)

type t = {
  expires_ns : int64;   (* Int64.max_int = never *)
  budget_s : float;
}

let now_ns () = Monotonic_clock.now ()

let after ~seconds =
  if seconds <= 0. then { expires_ns = Int64.max_int; budget_s = seconds }
  else
    {
      expires_ns =
        Int64.add (now_ns ()) (Int64.of_float (seconds *. 1e9));
      budget_s = seconds;
    }

let expired t =
  t.expires_ns <> Int64.max_int && Int64.compare (now_ns ()) t.expires_ns > 0

let remaining_s t =
  if t.expires_ns = Int64.max_int then infinity
  else Int64.to_float (Int64.sub t.expires_ns (now_ns ())) /. 1e9

let check ?(where = "util.deadline") = function
  | None -> ()
  | Some t ->
      if expired t then
        Sim_error.raisef Sim_error.Watchdog_timeout ~where
          "wall-clock budget (%.0fs) exhausted" t.budget_s
