(** Monotonic-clock wall-clock budgets for the execute loops.

    The PR-1 watchdog armed a [SIGALRM] interval timer; signals are
    delivered to the main domain only, so a runaway simulation inside a
    {!Domain.spawn}ed worker could never be interrupted.  A deadline is
    instead a target instant on the monotonic clock that the hot loops
    poll every ~64k steps — domain-safe, immune to wall-clock jumps, and
    cheap enough (one clock read per 65536 instructions) to be
    unmeasurable.

    Expiry raises a structured {!Pf_util.Sim_error.Error} with kind
    [Watchdog_timeout], exactly like the step-budget watchdog, so the
    experiment harness classifies and isolates it the same way. *)

type t
(** An absolute expiry instant on the monotonic clock. *)

val after : seconds:float -> t
(** [after ~seconds] is the instant [seconds] from now.  [seconds <= 0.]
    yields a deadline that never expires (the disabled watchdog). *)

val expired : t -> bool

val check : ?where:string -> t option -> unit
(** Poll an optional deadline: [None] and unexpired deadlines are free;
    an expired one raises [Sim_error.Error] with [Watchdog_timeout] and
    the configured budget in the detail.  [where] defaults to
    ["util.deadline"]. *)

val remaining_s : t -> float
(** Seconds until expiry (negative once expired); [infinity] for the
    never-expiring deadline. *)
