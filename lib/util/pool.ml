let default_jobs () = Domain.recommended_domain_count ()

(* Closed-on-creation work queue: every task is known up front, so the
   queue holds the next unclaimed index and the condition variable only
   matters for the (cheap, uncontended) claim handshake.  Workers claim
   one index at a time — benchmark runtimes vary by an order of
   magnitude, so static striping would leave domains idle. *)
type queue = {
  m : Mutex.t;
  c : Condition.t;
  mutable next : int;
  total : int;
}

let claim q =
  Mutex.lock q.m;
  let i = q.next in
  if i < q.total then begin
    q.next <- i + 1;
    (* wake anyone blocked on a full mutex hand-off; with a pre-filled
       queue this also keeps the condvar honest for future queue shapes *)
    Condition.signal q.c
  end;
  Mutex.unlock q.m;
  if i < q.total then Some i else None

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if jobs = 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let n = Array.length inputs in
    let results = Array.make n None in
    let q = { m = Mutex.create (); c = Condition.create (); next = 0; total = n } in
    let rec worker () =
      match claim q with
      | None -> ()
      | Some i ->
          (results.(i) <-
             Some
               (match f inputs.(i) with
               | v -> Ok v
               | exception e -> Error (e, Printexc.get_raw_backtrace ())));
          worker ()
    in
    let spawned = min (jobs - 1) (max 0 (n - 1)) in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None ->
             Sim_error.raisef Sim_error.Internal ~where:"util.pool"
               "worker left a result slot empty")
  end
