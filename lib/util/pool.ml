let default_jobs () = Domain.recommended_domain_count ()

(* Every entry point that accepts a --jobs count funnels it through here:
   a non-positive worker count is an ill-formed configuration, and it must
   fail the same structured way whether it arrives via the CLI, a library
   caller or a service config — not be silently clamped by one path and
   rejected with a bare eprintf by another. *)
let validate_jobs ?(where = "util.pool") jobs =
  if jobs < 1 then
    Sim_error.raisef Sim_error.Invalid_config ~where
      "jobs must be >= 1 (got %d)" jobs;
  jobs

(* ---- one-shot batch map ------------------------------------------------ *)

(* Closed-on-creation work queue: every task is known up front, so the
   queue holds the next unclaimed index and the condition variable only
   matters for the (cheap, uncontended) claim handshake.  Workers claim
   one index at a time — benchmark runtimes vary by an order of
   magnitude, so static striping would leave domains idle. *)
type queue = {
  m : Mutex.t;
  c : Condition.t;
  mutable next : int;
  total : int;
}

let claim q =
  Mutex.lock q.m;
  let i = q.next in
  if i < q.total then begin
    q.next <- i + 1;
    (* wake anyone blocked on a full mutex hand-off; with a pre-filled
       queue this also keeps the condvar honest for future queue shapes *)
    Condition.signal q.c
  end;
  Mutex.unlock q.m;
  if i < q.total then Some i else None

(* Every element ran (the parallel path always finished in-flight work,
   and the sequential path now matches it), so a failure report can cover
   *all* failing elements instead of dropping every diagnostic but the
   first.  A single failure re-raises the original exception with its
   backtrace — byte-for-byte the old behaviour; two or more aggregate
   into one structured Sim_error whose kind is the lowest-indexed
   failure's (the deterministic "primary" the old code re-raised) and
   whose detail lists every worker's diagnostic. *)
let raise_failures ~total = function
  | [] ->
      Sim_error.raisef Sim_error.Internal ~where:"util.pool"
        "raise_failures on an empty failure list"
  | [ (_, e, bt) ] -> Printexc.raise_with_backtrace e bt
  | (_, first, _) :: _ as fails ->
      let kind =
        match first with
        | Sim_error.Error e -> e.Sim_error.kind
        | _ -> Sim_error.Internal
      in
      let describe (i, e, _) =
        Printf.sprintf "  [%d] %s" i
          (match e with
          | Sim_error.Error se -> Sim_error.to_string se
          | e -> Printexc.to_string e)
      in
      Sim_error.raisef kind ~where:"util.pool"
        "%d of %d pooled tasks failed:\n%s" (List.length fails) total
        (String.concat "\n" (List.map describe fails))

let map ?jobs f xs =
  let jobs =
    match jobs with Some j -> validate_jobs j | None -> default_jobs ()
  in
  let inputs = Array.of_list xs in
  let n = Array.length inputs in
  let results = Array.make n None in
  let run_index i =
    results.(i) <-
      Some
        (match f inputs.(i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  if jobs = 1 then
    for i = 0 to n - 1 do
      run_index i
    done
  else begin
    let q = { m = Mutex.create (); c = Condition.create (); next = 0; total = n } in
    let rec worker () =
      match claim q with
      | None -> ()
      | Some i ->
          run_index i;
          worker ()
    in
    let spawned = min (jobs - 1) (max 0 (n - 1)) in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  let fails = ref [] in
  Array.iteri
    (fun i -> function
      | Some (Error (e, bt)) -> fails := (i, e, bt) :: !fails
      | Some (Ok _) -> ()
      | None ->
          Sim_error.raisef Sim_error.Internal ~where:"util.pool"
            "worker left result slot %d empty" i)
    results;
  match List.rev !fails with
  | [] ->
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error _) | None ->
               Sim_error.raisef Sim_error.Internal ~where:"util.pool"
                 "unreachable: failures already raised")
  | fails -> raise_failures ~total:n fails

(* ---- persistent bounded-queue service ---------------------------------- *)

module Service = struct
  type 'a t = {
    m : Mutex.t;
    nonempty : Condition.t;
    idle : Condition.t;
    q : 'a Queue.t;
    capacity : int;
    mutable stopping : bool;
    mutable in_flight : int;
    mutable accepted : int;
    mutable workers : unit Domain.t list;
    on_error : exn -> unit;
  }

  let create ?jobs ?(on_error = fun _ -> ()) ~capacity worker =
    let jobs =
      match jobs with Some j -> validate_jobs j | None -> default_jobs ()
    in
    let t =
      {
        m = Mutex.create ();
        nonempty = Condition.create ();
        idle = Condition.create ();
        q = Queue.create ();
        capacity = max 1 capacity;
        stopping = false;
        in_flight = 0;
        accepted = 0;
        workers = [];
        on_error;
      }
    in
    let rec loop () =
      Mutex.lock t.m;
      while Queue.is_empty t.q && not t.stopping do
        Condition.wait t.nonempty t.m
      done;
      if Queue.is_empty t.q then Mutex.unlock t.m (* stopping, queue dry *)
      else begin
        let item = Queue.pop t.q in
        t.in_flight <- t.in_flight + 1;
        Mutex.unlock t.m;
        (* a worker domain must survive anything a task throws: one
           poisoned request never takes the service down *)
        (try worker item with e -> (try t.on_error e with _ -> ()));
        Mutex.lock t.m;
        t.in_flight <- t.in_flight - 1;
        if Queue.is_empty t.q && t.in_flight = 0 then
          Condition.broadcast t.idle;
        Mutex.unlock t.m;
        loop ()
      end
    in
    t.workers <- List.init jobs (fun _ -> Domain.spawn loop);
    t

  let submit t item =
    Mutex.lock t.m;
    let accepted = (not t.stopping) && Queue.length t.q < t.capacity in
    if accepted then begin
      Queue.push item t.q;
      t.accepted <- t.accepted + 1;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.m;
    accepted

  let depth t =
    Mutex.lock t.m;
    let d = Queue.length t.q + t.in_flight in
    Mutex.unlock t.m;
    d

  let capacity t = t.capacity
  let workers t = List.length t.workers

  let accepted t =
    Mutex.lock t.m;
    let a = t.accepted in
    Mutex.unlock t.m;
    a

  let drain t =
    Mutex.lock t.m;
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    while not (Queue.is_empty t.q && t.in_flight = 0) do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- []
end
