(** Fixed-size domain worker pool for embarrassingly parallel sweeps.

    OCaml 5 gives the simulator one domain per core; the experiment sweep
    (21 independent benchmarks × 4 configurations), the fault campaigns
    (N independently seeded trials) and the design-space explorer (one
    trace-replay pipeline per benchmark) are pure fan-out, so a small
    [Domain.spawn] pool with a mutex/condition work queue covers all of
    them.  Results always come back in input order — parallelism must
    never change what a sweep reports, only how fast it reports it.

    This lives in [pf_util] so layers below the harness (notably
    [pf_dse]) can fan out too; [Pf_harness.Pool] re-exports it
    unchanged. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — one worker per available
    core. *)

val validate_jobs : ?where:string -> int -> int
(** Identity on a well-formed worker count; raises a structured
    {!Sim_error.Error} of kind [Invalid_config] when [jobs < 1].  Every
    entry point that accepts a jobs count — {!map}, {!Service.create},
    the CLI's [--jobs] — validates through here so malformed values fail
    identically everywhere.  [where] defaults to ["util.pool"]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on a pool of
    [jobs] worker domains (the calling domain works too, so [jobs = 4]
    spawns three) and returns the results in input order.

    [jobs] defaults to {!default_jobs}; [jobs = 1] runs sequentially in
    the calling domain — no domain is spawned.

    Failure reporting covers {e every} failing element, not just the
    first: all elements run to completion regardless of failures (the
    sequential path matches the parallel one), the spawned domains are
    joined, and then

    - if exactly one element failed, its exception is re-raised with its
      original backtrace;
    - if several failed, one {!Sim_error.Error} is raised whose [kind]
      is that of the lowest-indexed failure (or [Internal] if it was not
      a [Sim_error]), [where] is ["util.pool"], and whose detail lists
      each failing index with its own diagnostic — deterministic even
      when elements fail in parallel.

    [f] must be safe to run concurrently with itself on different
    elements (no shared mutable state); every simulation entry point in
    this tree qualifies. *)

(** Persistent bounded-admission worker pool.

    Where {!map} is a one-shot fan-out over a closed list, [Service] is
    the long-running form the [powerfits serve] daemon schedules onto: a
    fixed set of worker domains draining a bounded queue of submitted
    tasks.  The bound is the backpressure mechanism — when the queue is
    full, {!submit} refuses instead of buffering without limit, and the
    daemon turns that refusal into a structured [overloaded] reply. *)
module Service : sig
  type 'a t

  val create :
    ?jobs:int -> ?on_error:(exn -> unit) -> capacity:int -> ('a -> unit) -> 'a t
  (** [create ~capacity worker] spawns [jobs] (default {!default_jobs})
      worker domains, each looping: pop a task, run [worker] on it.  At
      most [capacity] tasks wait in the queue (clamped to ≥ 1).  A task
      that raises never kills its domain: the exception goes to
      [on_error] (default: dropped) and the worker keeps serving. *)

  val submit : 'a t -> 'a -> bool
  (** Enqueue a task.  Returns [false] — without blocking and without
      side effects — when the queue is at capacity or the service is
      draining. *)

  val depth : 'a t -> int
  (** Tasks currently queued plus in flight. *)

  val capacity : 'a t -> int

  val workers : 'a t -> int

  val accepted : 'a t -> int
  (** Total tasks accepted by {!submit} since creation. *)

  val drain : 'a t -> unit
  (** Graceful shutdown: stop admitting, run every already-accepted task
      to completion, join all worker domains.  Idempotent in effect —
      after [drain] returns the service holds no threads and {!submit}
      always refuses. *)
end
