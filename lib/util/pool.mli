(** Fixed-size domain worker pool for embarrassingly parallel sweeps.

    OCaml 5 gives the simulator one domain per core; the experiment sweep
    (21 independent benchmarks × 4 configurations), the fault campaigns
    (N independently seeded trials) and the design-space explorer (one
    trace-replay pipeline per benchmark) are pure fan-out, so a small
    [Domain.spawn] pool with a mutex/condition work queue covers all of
    them.  Results always come back in input order — parallelism must
    never change what a sweep reports, only how fast it reports it.

    This lives in [pf_util] so layers below the harness (notably
    [pf_dse]) can fan out too; [Pf_harness.Pool] re-exports it
    unchanged. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — one worker per available
    core. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on a pool of
    [jobs] worker domains (the calling domain works too, so [jobs = 4]
    spawns three) and returns the results in input order.

    [jobs] defaults to {!default_jobs}; [jobs = 1] runs sequentially in
    the calling domain — byte-for-byte today's behaviour, no domain is
    spawned.  If [f] raises on some element, every in-flight element
    still finishes, the spawned domains are joined, and the exception of
    the {e lowest-indexed} failing element is re-raised with its
    backtrace — deterministic even when several elements fail in
    parallel.

    [f] must be safe to run concurrently with itself on different
    elements (no shared mutable state); every simulation entry point in
    this tree qualifies. *)
