type kind =
  | Decode_fault
  | Memory_fault
  | Watchdog_timeout
  | Divergence
  | Translate_gap
  | Invalid_config
  | Internal

type t = {
  kind : kind;
  where : string;
  detail : string;
  backtrace : string option;
}

exception Error of t

let kind_name = function
  | Decode_fault -> "decode-fault"
  | Memory_fault -> "memory-fault"
  | Watchdog_timeout -> "watchdog-timeout"
  | Divergence -> "divergence"
  | Translate_gap -> "translate-gap"
  | Invalid_config -> "invalid-config"
  | Internal -> "internal"

let to_string e =
  let base = Printf.sprintf "%s [%s]: %s" (kind_name e.kind) e.where e.detail in
  match e.backtrace with
  | None -> base
  | Some bt ->
      (* indent the captured backtrace under the error line so service
         logs and campaign reports keep one finding per left-margin line *)
      let indented =
        String.split_on_char '\n' (String.trim bt)
        |> List.map (fun l -> "    " ^ l)
        |> String.concat "\n"
      in
      base ^ "\n" ^ indented

let raisef kind ~where fmt =
  Format.kasprintf
    (fun detail -> raise (Error { kind; where; detail; backtrace = None }))
    fmt

let exit_code e = match e.kind with Divergence -> 3 | _ -> 4

let protect ~where f =
  try Ok (f ()) with
  | Error e -> Result.Error e
  | Stack_overflow ->
      Result.Error
        { kind = Internal; where; detail = "stack overflow"; backtrace = None }
  | Out_of_memory ->
      Result.Error
        { kind = Internal; where; detail = "out of memory"; backtrace = None }
  | exn ->
      (* an unexpected exception: capture where it came from while the
         raise is still fresh — this is the only diagnostic a service log
         or campaign report will ever have for it *)
      let bt =
        Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
      in
      Result.Error
        {
          kind = Internal;
          where;
          detail = Printexc.to_string exn;
          backtrace = (if String.trim bt = "" then None else Some bt);
        }
