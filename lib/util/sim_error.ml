type kind =
  | Decode_fault
  | Memory_fault
  | Watchdog_timeout
  | Divergence
  | Translate_gap
  | Invalid_config
  | Internal

type t = {
  kind : kind;
  where : string;
  detail : string;
}

exception Error of t

let kind_name = function
  | Decode_fault -> "decode-fault"
  | Memory_fault -> "memory-fault"
  | Watchdog_timeout -> "watchdog-timeout"
  | Divergence -> "divergence"
  | Translate_gap -> "translate-gap"
  | Invalid_config -> "invalid-config"
  | Internal -> "internal"

let to_string e =
  Printf.sprintf "%s [%s]: %s" (kind_name e.kind) e.where e.detail

let raisef kind ~where fmt =
  Format.kasprintf (fun detail -> raise (Error { kind; where; detail })) fmt

let exit_code e = match e.kind with Divergence -> 3 | _ -> 4

let protect ~where f =
  try Ok (f ()) with
  | Error e -> Result.Error e
  | Stack_overflow ->
      Result.Error { kind = Internal; where; detail = "stack overflow" }
  | Out_of_memory ->
      Result.Error { kind = Internal; where; detail = "out of memory" }
  | exn ->
      Result.Error
        { kind = Internal; where; detail = Printexc.to_string exn }
