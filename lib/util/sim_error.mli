(** Structured simulation errors.

    Every failure the simulation stack can produce is classified into one
    of a small set of kinds, carrying the subsystem that raised it and a
    human-readable detail string.  The experiment harness catches these to
    isolate per-benchmark failures (one bad run must not abort a sweep),
    and the CLI maps them to distinct exit codes. *)

type kind =
  | Decode_fault      (** undecodable word / corrupted decoder entry / bad SWI *)
  | Memory_fault      (** unaligned or out-of-range simulated memory access *)
  | Watchdog_timeout  (** step budget or wall-clock budget exhausted *)
  | Divergence        (** ARM and FITS executions printed different output *)
  | Translate_gap     (** no finite FITS expansion exists (synthesis capacity) *)
  | Invalid_config    (** ill-formed simulator configuration *)
  | Internal          (** invariant violation inside the simulator itself *)

type t = {
  kind : kind;
  where : string;  (** originating subsystem, e.g. ["arm.exec"] *)
  detail : string;
  backtrace : string option;
      (** exception backtrace, captured by {!protect} for unexpected
          (non-{!Error}) exceptions when the runtime records backtraces;
          [None] for structured errors, which carry their own [where] *)
}

exception Error of t

val kind_name : kind -> string

val to_string : t -> string

val raisef :
  kind -> where:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [raisef kind ~where fmt ...] raises {!Error} with a formatted detail. *)

val exit_code : t -> int
(** CLI exit code for this error: 3 for {!Divergence}, 4 for everything
    else (0..2 are reserved for success / fatal / usage errors). *)

val protect : where:string -> (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting any exception into a classified error:
    {!Error} passes through; other exceptions (including [Failure],
    [Invalid_argument], [Stack_overflow], [Out_of_memory]) become
    {!Internal}, with the exception backtrace attached when the runtime
    recorded one (see {!t.backtrace}).  Never lets an exception
    escape. *)
