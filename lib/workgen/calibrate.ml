(* Structural statistics of kir program populations.  One AST walker bins
   both the hand-written benchmarks and generated programs, so the
   chi-square-style closeness report compares identically-measured share
   vectors. *)

open Pf_kir.Ast

type dim = { dname : string; labels : string array; counts : int array }
type t = { programs : int; dims : dim array }

let dim_specs =
  [|
    ( "ops",
      [|
        "addsub"; "mul"; "divrem"; "logic"; "shift"; "cmp"; "load"; "store";
        "call";
      |] );
    ("imm", [| "w4"; "w8"; "w16"; "w32" |]);
    ("stmt", [| "straight"; "if"; "loop" |]);
    ("loopdepth", [| "d1"; "d2"; "d3plus" |]);
    ("locals", [| "l0_3"; "l4_7"; "l8_12"; "l13plus" |]);
    ("arity", [| "a0"; "a1"; "a2"; "a3"; "a4" |]);
    ("fanout", [| "c0"; "c1"; "c2"; "c3plus" |]);
    ("footprint", [| "le1k"; "le4k"; "le16k"; "gt16k" |]);
    ("gwidth", [| "w8"; "w16"; "w32" |]);
  |]

module Cat = struct
  let addsub = 0
  let mul = 1
  let divrem = 2
  let logic = 3
  let shift = 4
  let cmp = 5
  let load = 6
  let store = 7
  let call = 8
end

let empty () =
  {
    programs = 0;
    dims =
      Array.map
        (fun (dname, labels) ->
          { dname; labels; counts = Array.make (Array.length labels) 0 })
        dim_specs;
  }

let dim_index name =
  let rec find i =
    if i >= Array.length dim_specs then
      Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config
        ~where:"workgen.calibrate" "unknown calibration dimension %S" name
    else if fst dim_specs.(i) = name then i
    else find (i + 1)
  in
  find 0

let d_ops = dim_index "ops"
let d_imm = dim_index "imm"
let d_stmt = dim_index "stmt"
let d_loopdepth = dim_index "loopdepth"
let d_locals = dim_index "locals"
let d_arity = dim_index "arity"
let d_fanout = dim_index "fanout"
let d_footprint = dim_index "footprint"
let d_gwidth = dim_index "gwidth"

let bump t d i =
  let c = t.dims.(d).counts in
  c.(i) <- c.(i) + 1

let imm_bucket v =
  let m = abs v in
  if m < 16 then 0 else if m < 256 then 1 else if m < 65536 then 2 else 3

let scale_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4
let scale_bucket = function W8 -> 0 | W16 -> 1 | W32 -> 2

(* straight / if / loop *)
let stmt_bucket = function
  | If _ -> 1
  | While _ | For _ -> 2
  | Let _ | Assign _ | Store _ | Expr _ | Return _ | Break | Continue
  | Print_int _ | Print_char _ ->
      0

let features_of_program (p : program) =
  let t = empty () in
  let rec expr = function
    | Int v -> bump t d_imm (imm_bucket v)
    | Var _ | Global_addr _ -> ()
    | Load { addr; _ } ->
        bump t d_ops Cat.load;
        expr addr
    | Binop (op, a, b) ->
        let cat =
          match op with
          | Add | Sub -> Cat.addsub
          | Mul -> Cat.mul
          | Div | Rem | Udiv | Urem -> Cat.divrem
          | And | Or | Xor -> Cat.logic
          | Shl | Shr | Sar -> Cat.shift
        in
        bump t d_ops cat;
        expr a;
        expr b
    | Unop (_, a) ->
        bump t d_ops Cat.logic;
        expr a
    | Cmp (_, a, b) ->
        bump t d_ops Cat.cmp;
        expr a;
        expr b
    | Call (_, args) ->
        bump t d_ops Cat.call;
        List.iter expr args
  in
  (* per-function accumulators threaded by reference *)
  let locals = ref 0 in
  let callees : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec note_calls = function
    | Call (f, args) ->
        Hashtbl.replace callees f ();
        List.iter note_calls args
    | Int _ | Var _ | Global_addr _ -> ()
    | Load { addr; _ } -> note_calls addr
    | Binop (_, a, b) | Cmp (_, a, b) ->
        note_calls a;
        note_calls b
    | Unop (_, a) -> note_calls a
  in
  let rec stmt depth s =
    bump t d_stmt (stmt_bucket s);
    match s with
    | Let (_, e) ->
        incr locals;
        note_calls e;
        expr e
    | Assign (_, e) | Expr e | Print_int e | Print_char e ->
        note_calls e;
        expr e
    | Return (Some e) ->
        note_calls e;
        expr e
    | Return None | Break | Continue -> ()
    | Store { addr; value; _ } ->
        bump t d_ops Cat.store;
        note_calls addr;
        note_calls value;
        expr addr;
        expr value
    | If (c, th, el) ->
        note_calls (match c with e -> e);
        expr c;
        List.iter (stmt depth) th;
        List.iter (stmt depth) el
    | While (c, body) ->
        bump t d_loopdepth (min (depth + 1) 3 - 1);
        note_calls c;
        expr c;
        List.iter (stmt (depth + 1)) body
    | For (_, lo, hi, body) ->
        incr locals;
        bump t d_loopdepth (min (depth + 1) 3 - 1);
        note_calls lo;
        note_calls hi;
        expr lo;
        expr hi;
        List.iter (stmt (depth + 1)) body
  in
  List.iter
    (fun (f : func) ->
      locals := List.length f.params;
      Hashtbl.reset callees;
      List.iter (stmt 0) f.body;
      let l = !locals in
      bump t d_locals
        (if l <= 3 then 0 else if l <= 7 then 1 else if l <= 12 then 2 else 3);
      bump t d_arity (min (List.length f.params) 4);
      let c = Hashtbl.length callees in
      bump t d_fanout (min c 3))
    p.funcs;
  let bytes =
    List.fold_left
      (fun acc (g : global) -> acc + (g.length * scale_bytes g.gscale))
      0 p.globals
  in
  bump t d_footprint
    (if bytes <= 1024 then 0
     else if bytes <= 4096 then 1
     else if bytes <= 16384 then 2
     else 3);
  List.iter (fun (g : global) -> bump t d_gwidth (scale_bucket g.gscale)) p.globals;
  { t with programs = 1 }

let merge a b =
  {
    programs = a.programs + b.programs;
    dims =
      Array.map2
        (fun da db ->
          { da with counts = Array.map2 ( + ) da.counts db.counts })
        a.dims b.dims;
  }

let merge_all = List.fold_left merge (empty ())

let reference_v =
  lazy
    (Pf_mibench.Registry.all
    |> List.map (fun (b : Pf_mibench.Registry.benchmark) ->
           features_of_program (b.program ~scale:1))
    |> merge_all)

let reference () = Lazy.force reference_v

let shares t name =
  let d = t.dims.(dim_index name) in
  let total = Array.fold_left ( + ) 0 d.counts in
  if total = 0 then Array.make (Array.length d.counts) 0.
  else Array.map (fun c -> float_of_int c /. float_of_int total) d.counts

let eps = 0.01

let distance ~reference t =
  Array.to_list t.dims
  |> List.map (fun d ->
         let p = shares t d.dname and q = shares reference d.dname in
         let dist = ref 0. in
         Array.iteri
           (fun i pi ->
             let diff = pi -. q.(i) in
             dist := !dist +. (diff *. diff /. (q.(i) +. eps)))
           p;
         (d.dname, !dist))

let max_distance ~reference t =
  List.fold_left (fun acc (_, d) -> Float.max acc d) 0. (distance ~reference t)

let tolerance = 0.25

let report ~reference t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "calibration vs %d-benchmark envelope (population: %d programs)\n"
       reference.programs t.programs);
  let dists = distance ~reference t in
  Array.iter
    (fun d ->
      let p = shares t d.dname and q = shares reference d.dname in
      let dist = List.assoc d.dname dists in
      Buffer.add_string buf
        (Printf.sprintf "  %-10s chi2=%.4f %s\n" d.dname dist
           (if dist <= tolerance then "ok" else "DRIFT"));
      Array.iteri
        (fun i label ->
          Buffer.add_string buf
            (Printf.sprintf "    %-8s ref %5.1f%%  gen %5.1f%%\n" label
               (100. *. q.(i)) (100. *. p.(i))))
        d.labels)
    t.dims;
  let m = max_distance ~reference t in
  Buffer.add_string buf
    (Printf.sprintf "  max chi2 distance %.4f (tolerance %.2f): %s\n" m
       tolerance
       (if m <= tolerance then "within envelope" else "OUT OF ENVELOPE"));
  Buffer.contents buf
