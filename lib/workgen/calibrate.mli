(** Workload-envelope calibration: measure the structural statistics of a
    kir program population and compare populations chi-square-style.

    One extractor ({!features_of_program}) walks the AST and bins it along
    nine dimensions — operator mix, immediate magnitudes, statement mix,
    loop-nest depth, per-function locals (register pressure), call arity,
    call fan-out, global data footprint and global element widths.  The
    {e same} extractor runs over the 21 hand-written MiBench-workalike
    benchmarks ({!reference}) and over generated populations, so the
    closeness report compares like with like: structural address
    arithmetic introduced by the {!Pf_kir.Build} combinators counts
    identically on both sides. *)

type dim = {
  dname : string;
  labels : string array;
  counts : int array;  (** one counter per label, same length *)
}

type t = {
  programs : int;  (** population size the counts were merged over *)
  dims : dim array;  (** fixed order, identical across all values of [t] *)
}

(** Category indices of the ["ops"] dimension — the shared contract
    between the extractor and {!Generate}'s quota sampler. *)
module Cat : sig
  val addsub : int
  val mul : int
  val divrem : int
  val logic : int
  val shift : int
  val cmp : int
  val load : int
  val store : int
  val call : int
end

val empty : unit -> t
val features_of_program : Pf_kir.Ast.program -> t
(** Features of one program ([programs = 1]). *)

val merge : t -> t -> t
val merge_all : t list -> t

val reference : unit -> t
(** The 21-benchmark envelope (scale 1, AST-only — no execution).
    Computed once and cached. *)

val shares : t -> string -> float array
(** Normalized category shares of one dimension (all zeros when the
    dimension counted nothing).
    @raise Pf_util.Sim_error.Error for an unknown dimension name. *)

val distance : reference:t -> t -> (string * float) list
(** Per-dimension chi-square-style distance between share vectors:
    [sum_i (p_i - q_i)^2 / (q_i + eps)] with [q] the reference shares and
    [eps = 0.01] guarding empty reference bins.  0 = identical shapes. *)

val max_distance : reference:t -> t -> float

val tolerance : float
(** Documented acceptance threshold on {!max_distance} for generated
    populations (see DESIGN.md §16). *)

val report : reference:t -> t -> string
(** Side-by-side share table per dimension with distances and a
    within-tolerance verdict line. *)
