(* Deficit-weighted seeded program generation.  Every free choice is
   drawn from a quota tracking its calibration dimension; structurally
   forced nodes (index masks, address arithmetic, loop bounds, divisor
   guards) are charged to the same quotas so the measured statistics stay
   truthful.  A dynamic statement-execution budget bounds every loop nest
   and every call site, and the helper call graph is generated as a DAG,
   so termination is by construction. *)

module Ast = Pf_kir.Ast
module Rng = Pf_util.Rng
module Cat = Calibrate.Cat

let name ~index = Printf.sprintf "gen-%06d" index

(* ---------- deficit quotas ---------- *)

type quota = { target : float array; counts : int array; mutable total : int }

let quota_of model dim =
  let target = Calibrate.shares model dim in
  let n = Array.length target in
  let sum = Array.fold_left ( +. ) 0. target in
  let target =
    if sum <= 0. then Array.make n (1. /. float_of_int n) else target
  in
  { target; counts = Array.make n 0; total = 0 }

let note q i =
  q.counts.(i) <- q.counts.(i) + 1;
  q.total <- q.total + 1

let deficit q i =
  (q.target.(i) *. float_of_int (q.total + 1)) -. float_of_int q.counts.(i)

(* Sample a legal category with weight proportional to its deficit
   (plain target shares once every deficit is spent), and count it. *)
let pick rng q ~legal =
  let n = Array.length q.target in
  let w = Array.make n 0. in
  let sum = ref 0. in
  for i = 0 to n - 1 do
    if legal i then begin
      w.(i) <- Float.max 0. (deficit q i);
      sum := !sum +. w.(i)
    end
  done;
  if !sum <= 0. then
    for i = 0 to n - 1 do
      if legal i then begin
        w.(i) <- Float.max q.target.(i) 1e-6;
        sum := !sum +. w.(i)
      end
    done;
  if !sum <= 0. then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Internal
      ~where:"workgen.generate" "quota pick with no legal category";
  let r = Rng.float rng !sum in
  let choice = ref (-1) in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    if !choice < 0 && w.(i) > 0. then begin
      acc := !acc +. w.(i);
      if r < !acc then choice := i
    end
  done;
  if !choice < 0 then
    for i = n - 1 downto 0 do
      if !choice < 0 && w.(i) > 0. then choice := i
    done;
  note q !choice;
  !choice

(* ---------- generator state ---------- *)

type helper = { h_name : string; h_arity : int; h_cost : int }

type st = {
  rng : Rng.t;
  ops : quota;
  imm : quota;
  stmt : quota;
  depthq : quota;
  localsq : quota;
  arityq : quota;
  fanoutq : quota;
  footq : quota;
  gwidthq : quota;
  mutable budget : int;  (* remaining dynamic statement executions *)
  mutable fresh : int;
  mutable globals : (string * Ast.scale * int) list;  (* name, scale, len *)
  mutable helpers : helper list;  (* generated so far, callable *)
}

let fresh st prefix =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s%d" prefix st.fresh

(* same binning as Calibrate.imm_bucket (kept private there) *)
let imm_bucket v =
  let m = abs v in
  if m < 16 then 0 else if m < 256 then 1 else if m < 65536 then 2 else 3

(* a structurally required literal: count it where the extractor will *)
let imm_lit st v =
  note st.imm (imm_bucket v);
  Ast.Int v

(* a free-choice literal: bucket by deficit, value within the bucket *)
let fresh_imm st =
  let b = pick st.rng st.imm ~legal:(fun _ -> true) in
  let v =
    match b with
    | 0 -> Rng.int st.rng 16
    | 1 -> 16 + Rng.int st.rng 240
    | 2 -> 256 + Rng.int st.rng 65280
    | _ -> 65536 + Rng.int st.rng 0x40000000
  in
  Ast.Int v

let leaf st vars =
  if Array.length vars > 0 && Rng.int st.rng 4 > 0 then
    Ast.Var vars.(Rng.int st.rng (Array.length vars))
  else fresh_imm st

let pick_global st =
  let gs = Array.of_list st.globals in
  gs.(Rng.int st.rng (Array.length gs))

(* Masked global index: [e land (len-1)] — lengths are powers of two, so
   every access is in bounds.  The Build combinators add the address
   arithmetic ([gaddr + (idx << k)]); charge those nodes to the quotas
   exactly as the extractor will count them. *)
let masked_index st vars =
  fun (len : int) ->
    note st.ops Cat.logic;
    Ast.Binop (Ast.And, leaf st vars, imm_lit st (len - 1))

let note_addr_arith st (scale : Ast.scale) =
  note st.ops Cat.addsub;
  match scale with
  | Ast.W8 -> ()
  | Ast.W16 | Ast.W32 ->
      note st.ops Cat.shift;
      note st.imm 0

(* load with the category already counted by the caller's [pick] *)
let load_noted st vars (gname, scale, len) =
  let idx = masked_index st vars len in
  note_addr_arith st scale;
  match scale with
  | Ast.W8 -> Pf_kir.Build.idx8 gname idx
  | Ast.W16 -> Pf_kir.Build.idx16 gname idx
  | Ast.W32 -> Pf_kir.Build.idx32 gname idx

let store_noted st vars (gname, scale, len) value =
  let idx = masked_index st vars len in
  note_addr_arith st scale;
  match scale with
  | Ast.W8 -> Pf_kir.Build.setidx8 gname idx value
  | Ast.W16 -> Pf_kir.Build.setidx16 gname idx value
  | Ast.W32 -> Pf_kir.Build.setidx32 gname idx value

let rand_cmp st =
  match Rng.int st.rng 10 with
  | 0 -> Ast.Eq
  | 1 -> Ast.Ne
  | 2 -> Ast.Lt
  | 3 -> Ast.Le
  | 4 -> Ast.Gt
  | 5 -> Ast.Ge
  | 6 -> Ast.Ult
  | 7 -> Ast.Ule
  | 8 -> Ast.Ugt
  | _ -> Ast.Uge

(* ---------- expressions ---------- *)

let affordable st ~mult callees =
  List.filter (fun h -> st.budget >= mult * h.h_cost) callees

let rec gen_expr st ~vars ~callees ~mult ~depth =
  if depth <= 0 || Rng.int st.rng 100 < 30 then leaf st vars
  else begin
    let can_call = affordable st ~mult callees <> [] in
    let legal i =
      if i = Cat.store then false
      else if i = Cat.load then st.globals <> []
      else if i = Cat.call then can_call
      else true
    in
    let cat = pick st.rng st.ops ~legal in
    let sub () = gen_expr st ~vars ~callees ~mult ~depth:(depth - 1) in
    if cat = Cat.addsub then
      Ast.Binop ((if Rng.bool st.rng then Ast.Add else Ast.Sub), sub (), sub ())
    else if cat = Cat.mul then Ast.Binop (Ast.Mul, sub (), sub ())
    else if cat = Cat.divrem then begin
      (* unsigned with an |1 divisor: never a division by zero *)
      note st.ops Cat.logic;
      let divisor = Ast.Binop (Ast.Or, sub (), imm_lit st 1) in
      Ast.Binop ((if Rng.bool st.rng then Ast.Udiv else Ast.Urem), sub (),
                 divisor)
    end
    else if cat = Cat.logic then begin
      match Rng.int st.rng 5 with
      | 0 -> Ast.Binop (Ast.And, sub (), sub ())
      | 1 -> Ast.Binop (Ast.Or, sub (), sub ())
      | 2 -> Ast.Binop (Ast.Xor, sub (), sub ())
      | 3 -> Ast.Unop (Ast.Bnot, sub ())
      | _ -> Ast.Unop (Ast.Neg, sub ())
    end
    else if cat = Cat.shift then begin
      let op =
        match Rng.int st.rng 3 with
        | 0 -> Ast.Shl
        | 1 -> Ast.Shr
        | _ -> Ast.Sar
      in
      Ast.Binop (op, sub (), imm_lit st (Rng.int st.rng 32))
    end
    else if cat = Cat.cmp then Ast.Cmp (rand_cmp st, sub (), sub ())
    else if cat = Cat.load then load_noted st vars (pick_global st)
    else (* call *)
      gen_call st ~vars ~callees ~mult
  end

and gen_call st ~vars ~callees ~mult =
  let pool = Array.of_list (affordable st ~mult callees) in
  let h = pool.(Rng.int st.rng (Array.length pool)) in
  st.budget <- st.budget - (mult * h.h_cost);
  let args = List.init h.h_arity (fun _ -> leaf st vars) in
  Ast.Call (h.h_name, args)

(* ---------- statements ---------- *)

let trips = [| 4; 8; 16; 32; 64 |]

(* straight / if / loop category indices in the "stmt" dimension *)
let s_straight = 0
let s_if = 1
let s_loop = 2

let accum_stmt st ~vars x =
  let e = gen_expr st ~vars ~callees:[] ~mult:1 ~depth:1 in
  let op, cat =
    match Rng.int st.rng 3 with
    | 0 -> (Ast.Add, Cat.addsub)
    | 1 -> (Ast.Xor, Cat.logic)
    | _ -> (Ast.Sub, Cat.addsub)
  in
  note st.ops cat;
  Ast.Assign (x, Ast.Binop (op, Ast.Var x, e))

let rec gen_block st ~mut ~vars ~callees ~depth ~mult ~in_loop ~in_for ~n =
  let out = ref [] in
  let emit s = out := s :: !out in
  let i = ref 0 in
  while !i < n && st.budget >= mult do
    incr i;
    st.budget <- st.budget - mult;
    let min_trip_cost = mult * trips.(0) * 3 in
    let loop_ok =
      depth < 3
      && st.budget >= min_trip_cost
      && (depth = 0 || deficit st.depthq (min (depth + 1) 3 - 1) > 0.)
    in
    let legal c = c <> s_loop || loop_ok in
    let cat = pick st.rng st.stmt ~legal in
    if cat = s_straight then
      emit (gen_straight st ~mut ~vars ~callees ~mult)
    else if cat = s_if then begin
      note st.ops Cat.cmp;
      let sub d = gen_expr st ~vars ~callees ~mult ~depth:d in
      let cond = Ast.Cmp (rand_cmp st, sub 1, sub 1) in
      let then_n = 1 + Rng.int st.rng 3 in
      let then_b =
        gen_block st ~mut ~vars ~callees ~depth ~mult ~in_loop ~in_for
          ~n:then_n
      in
      let then_b =
        (* occasional early exit keeps control flow realistic; only ever
           appended inside a loop *)
        if in_loop && Rng.int st.rng 6 = 0 then begin
          note st.stmt s_straight;
          then_b
          @ [ (if in_for && Rng.bool st.rng then Ast.Continue else Ast.Break) ]
        end
        else then_b
      in
      let else_b =
        if Rng.bool st.rng then
          gen_block st ~mut ~vars ~callees ~depth ~mult ~in_loop ~in_for ~n:1
        else []
      in
      emit (Ast.If (cond, then_b, else_b))
    end
    else begin
      (* loop: constant-trip for_, occasionally a guarded down-counter *)
      let legal_trips =
        Array.to_list trips
        |> List.filter (fun t -> st.budget >= mult * t * 3)
      in
      match legal_trips with
      | [] -> emit (gen_straight st ~mut ~vars ~callees ~mult)
      | ts ->
          let ts = Array.of_list ts in
          let trip = ts.(Rng.int st.rng (Array.length ts)) in
          note st.depthq (min (depth + 1) 3 - 1);
          (* loop-header evaluations *)
          st.budget <- st.budget - (mult * trip);
          let body_n = 2 + Rng.int st.rng 4 in
          if Rng.int st.rng 100 < 85 || Array.length mut < 2 then begin
            let iv = fresh st "i" in
            let vars' = Array.append vars [| iv |] in
            let body =
              gen_block st ~mut ~vars:vars' ~callees ~depth:(depth + 1)
                ~mult:(mult * trip) ~in_loop:true ~in_for:true ~n:body_n
            in
            emit (Ast.For (iv, imm_lit st 0, imm_lit st trip, body))
          end
          else begin
            (* down-counter while: the counter local is excluded from the
               body's assignable set, and continue is forbidden inside so
               the decrement always runs *)
            let x = mut.(Rng.int st.rng (Array.length mut)) in
            (* the counter must be unassignable inside the body, or the
               loop may never reach zero; mut has >= 2 entries here *)
            let mut' =
              Array.of_list
                (List.filter (fun y -> y <> x) (Array.to_list mut))
            in
            note st.stmt s_straight;
            emit (Ast.Assign (x, imm_lit st trip));
            let body =
              gen_block st ~mut:mut' ~vars ~callees ~depth:(depth + 1)
                ~mult:(mult * trip) ~in_loop:true ~in_for:false ~n:body_n
            in
            note st.ops Cat.cmp;
            let cond = Ast.Cmp (Ast.Gt, Ast.Var x, imm_lit st 0) in
            note st.stmt s_straight;
            note st.ops Cat.addsub;
            let dec =
              Ast.Assign (x, Ast.Binop (Ast.Sub, Ast.Var x, imm_lit st 1))
            in
            emit (Ast.While (cond, body @ [ dec ]))
          end
    end
  done;
  List.rev !out

and gen_straight st ~mut ~vars ~callees ~mult =
  let assignable = Array.length mut > 0 in
  let x () = mut.(Rng.int st.rng (Array.length mut)) in
  match Rng.int st.rng 8 with
  | (0 | 1 | 2) when assignable ->
      Ast.Assign (x (), gen_expr st ~vars ~callees ~mult ~depth:3)
  | 3 when assignable -> accum_stmt st ~vars (x ())
  | (4 | 5) when st.globals <> [] ->
      note st.ops Cat.store;
      let value = gen_expr st ~vars ~callees ~mult ~depth:2 in
      store_noted st vars (pick_global st) value
  | 6 when affordable st ~mult callees <> [] ->
      Ast.Expr (gen_call st ~vars ~callees ~mult)
  | _ when assignable ->
      Ast.Assign (x (), gen_expr st ~vars ~callees ~mult ~depth:2)
  | _ ->
      Ast.Expr (gen_expr st ~vars ~callees ~mult ~depth:2)

(* ---------- functions ---------- *)

let bucket_value st (bounds : (int * int) array) b =
  let lo, span = bounds.(b) in
  lo + Rng.int st.rng span

let gen_preamble st ~params ~count =
  let lets = ref [] in
  let names = ref [] in
  for _ = 1 to count do
    let t = fresh st "t" in
    let vars = Array.of_list (params @ List.rev !names) in
    note st.stmt s_straight;
    let init =
      if Array.length vars > 0 && Rng.bool st.rng then
        Ast.Var vars.(Rng.int st.rng (Array.length vars))
      else fresh_imm st
    in
    lets := Ast.Let (t, init) :: !lets;
    names := t :: !names
  done;
  (List.rev !lets, List.rev !names)

let gen_helper st ~index =
  let hname = Printf.sprintf "f%d" index in
  let arity = pick st.rng st.arityq ~legal:(fun _ -> true) in
  (* fan-out: how many earlier helpers this one may call *)
  let avail = Array.of_list st.helpers in
  let fan =
    pick st.rng st.fanoutq ~legal:(fun i ->
        i = 0 || Array.length avail >= min i 3)
  in
  let fan_count =
    min (Array.length avail) (if fan >= 3 then 3 + Rng.int st.rng 2 else fan)
  in
  Rng.shuffle st.rng avail;
  let callees = Array.to_list (Array.sub avail 0 fan_count) in
  let lbucket = pick st.rng st.localsq ~legal:(fun _ -> true) in
  let locals_target =
    bucket_value st [| (1, 3); (4, 4); (8, 5); (13, 4) |] lbucket
  in
  let nlets = max 1 (min 10 (locals_target - arity - 2)) in
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  let budget_before = st.budget in
  let preamble, lets = gen_preamble st ~params ~count:nlets in
  let mut = Array.of_list lets in
  let vars = Array.of_list (params @ lets) in
  let body =
    gen_block st ~mut ~vars ~callees ~depth:0 ~mult:1 ~in_loop:false
      ~in_for:false
      ~n:(4 + Rng.int st.rng 8)
  in
  note st.stmt s_straight;
  note st.ops Cat.addsub;
  let ret =
    let a = Ast.Var (List.nth lets 0) in
    let b =
      if Array.length vars > 0 then
        Ast.Var vars.(Rng.int st.rng (Array.length vars))
      else imm_lit st 1
    in
    Ast.Return (Some (Ast.Binop (Ast.Add, a, b)))
  in
  let cost = max 4 (budget_before - st.budget) in
  st.helpers <- st.helpers @ [ { h_name = hname; h_arity = arity; h_cost = cost } ];
  { Ast.name = hname; params; body = preamble @ body @ [ ret ] }

(* ---------- globals ---------- *)

let gen_globals st =
  let fb = pick st.rng st.footq ~legal:(fun _ -> true) in
  let target =
    bucket_value st [| (256, 768); (1025, 3071); (4097, 12287); (16385, 16384) |]
      fb
  in
  let arrays = ref [] in
  let sofar = ref 0 in
  let stop = ref false in
  while not !stop do
    let b = pick st.rng st.gwidthq ~legal:(fun _ -> true) in
    let sb = [| 1; 2; 4 |].(b) in
    let scale = [| Ast.W8; Ast.W16; Ast.W32 |].(b) in
    let room = target - !sofar in
    if room < 64 * sb || List.length !arrays >= 6 then stop := true
    else begin
      let len = ref 64 in
      while !len * 2 * sb <= room && !len < 8192 do
        len := !len * 2
      done;
      let len = if Rng.bool st.rng && !len > 64 then !len / 2 else !len in
      let gname = fresh st "g" in
      arrays := (gname, scale, len) :: !arrays;
      sofar := !sofar + (len * sb)
    end
  done;
  if !arrays = [] then arrays := [ (fresh st "g", Ast.W32, 64) ];
  st.globals <- List.rev !arrays;
  List.map
    (fun (gname, scale, len) ->
      if Rng.bool st.rng then
        (* seeded data segment *)
        let bound =
          match scale with Ast.W8 -> 256 | Ast.W16 -> 65536 | Ast.W32 -> 0
        in
        let init =
          Array.init (min len 64) (fun _ ->
              if bound = 0 then Rng.int32u st.rng else Rng.int st.rng bound)
        in
        { Ast.gname; gscale = scale; length = len; init = Some init }
      else { Ast.gname; gscale = scale; length = len; init = None })
    st.globals

(* ---------- main + whole program ---------- *)

let gen_main st =
  note st.arityq 0;
  note st.fanoutq (min (List.length st.helpers) 3);
  note st.localsq 1;
  let acc = "acc" in
  note st.stmt s_straight;
  let preamble0 = [ Ast.Let (acc, imm_lit st 0) ] in
  let preamble, lets = gen_preamble st ~params:[] ~count:2 in
  let mut = Array.of_list (acc :: lets) in
  let vars = mut in
  (* call every helper at least once, folding results into acc *)
  let calls =
    List.map
      (fun h ->
        st.budget <- max 0 (st.budget - h.h_cost);
        note st.stmt s_straight;
        note st.ops Cat.call;
        note st.ops Cat.addsub;
        let args =
          List.init h.h_arity (fun _ -> leaf st vars)
        in
        Ast.Assign
          (acc, Ast.Binop (Ast.Add, Ast.Var acc, Ast.Call (h.h_name, args))))
      st.helpers
  in
  let body =
    gen_block st ~mut ~vars ~callees:st.helpers ~depth:0 ~mult:1
      ~in_loop:false ~in_for:false
      ~n:(3 + Rng.int st.rng 5)
  in
  (* checksum sweep over the first global keeps the output sensitive to
     the data segment *)
  let checksum =
    match st.globals with
    | [] -> []
    | (gname, scale, len) :: _ ->
        let span = min len 64 in
        st.budget <- max 0 (st.budget - (2 * span));
        note st.stmt s_loop;
        note st.depthq 0;
        let iv = fresh st "i" in
        note st.stmt s_straight;
        note st.ops Cat.addsub;
        note st.ops Cat.load;
        note st.ops Cat.logic;
        let mask = Ast.Binop (Ast.And, Ast.Var iv, imm_lit st (len - 1)) in
        note_addr_arith st scale;
        let ld =
          match scale with
          | Ast.W8 -> Pf_kir.Build.idx8 gname mask
          | Ast.W16 -> Pf_kir.Build.idx16 gname mask
          | Ast.W32 -> Pf_kir.Build.idx32 gname mask
        in
        [
          Ast.For
            ( iv,
              imm_lit st 0,
              imm_lit st span,
              [ Ast.Assign (acc, Ast.Binop (Ast.Add, Ast.Var acc, ld)) ] );
        ]
  in
  note st.stmt s_straight;
  let out = [ Ast.Print_int (Ast.Var acc) ] in
  {
    Ast.name = "main";
    params = [];
    body = preamble0 @ preamble @ calls @ body @ checksum @ out;
  }

let mix64 seed index =
  (* splitmix64-style avalanche of (seed, index): per-index streams are
     independent of generation order *)
  let z = seed lxor ((index + 1) * 0x9E3779B97F4A7C) in
  let z = (z lxor (z lsr 30)) * 0xBF58476D1CE4E5B in
  let z = (z lxor (z lsr 27)) * 0x94D049BB133111E in
  z lxor (z lsr 31)

let program ~model ~seed ~index =
  let rng = Rng.create (mix64 seed index) in
  let st =
    {
      rng;
      ops = quota_of model "ops";
      imm = quota_of model "imm";
      stmt = quota_of model "stmt";
      depthq = quota_of model "loopdepth";
      localsq = quota_of model "locals";
      arityq = quota_of model "arity";
      fanoutq = quota_of model "fanout";
      footq = quota_of model "footprint";
      gwidthq = quota_of model "gwidth";
      budget = 2000 + Rng.int rng 20000;
      fresh = 0;
      globals = [];
      helpers = [];
    }
  in
  let globals = gen_globals st in
  let n_helpers = 2 + Rng.int st.rng 4 in
  (* helpers collectively spend at most half the budget; main gets the
     reserve back plus whatever they left *)
  let reserve = st.budget / 2 in
  st.budget <- st.budget - reserve;
  let helpers = List.init n_helpers (fun i -> gen_helper st ~index:i) in
  st.budget <- st.budget + reserve;
  let main = gen_main st in
  Pf_kir.Build.program globals (helpers @ [ main ])

(* ---------- canonical rendering ---------- *)

let scale_str = function Ast.W8 -> "w8" | Ast.W16 -> "w16" | Ast.W32 -> "w32"

let binop_str = function
  | Ast.Add -> "add"
  | Ast.Sub -> "sub"
  | Ast.Mul -> "mul"
  | Ast.Div -> "div"
  | Ast.Rem -> "rem"
  | Ast.Udiv -> "udiv"
  | Ast.Urem -> "urem"
  | Ast.And -> "and"
  | Ast.Or -> "or"
  | Ast.Xor -> "xor"
  | Ast.Shl -> "shl"
  | Ast.Shr -> "shr"
  | Ast.Sar -> "sar"

let cmp_str = function
  | Ast.Eq -> "eq"
  | Ast.Ne -> "ne"
  | Ast.Lt -> "lt"
  | Ast.Le -> "le"
  | Ast.Gt -> "gt"
  | Ast.Ge -> "ge"
  | Ast.Ult -> "ult"
  | Ast.Ule -> "ule"
  | Ast.Ugt -> "ugt"
  | Ast.Uge -> "uge"

let unop_str = function Ast.Neg -> "neg" | Ast.Bnot -> "bnot"

let render (p : Ast.program) =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rec expr = function
    | Ast.Int v -> pr "(i %d)" v
    | Ast.Var s -> pr "(v %s)" s
    | Ast.Global_addr s -> pr "(ga %s)" s
    | Ast.Load { scale; signed; addr } ->
        pr "(load %s %b " (scale_str scale) signed;
        expr addr;
        pr ")"
    | Ast.Binop (op, a, b) ->
        pr "(%s " (binop_str op);
        expr a;
        pr " ";
        expr b;
        pr ")"
    | Ast.Unop (op, a) ->
        pr "(%s " (unop_str op);
        expr a;
        pr ")"
    | Ast.Cmp (c, a, b) ->
        pr "(%s " (cmp_str c);
        expr a;
        pr " ";
        expr b;
        pr ")"
    | Ast.Call (f, args) ->
        pr "(call %s" f;
        List.iter
          (fun a ->
            pr " ";
            expr a)
          args;
        pr ")"
  in
  let rec stmt = function
    | Ast.Let (x, e) ->
        pr "(let %s " x;
        expr e;
        pr ")"
    | Ast.Assign (x, e) ->
        pr "(set %s " x;
        expr e;
        pr ")"
    | Ast.Store { scale; addr; value } ->
        pr "(store %s " (scale_str scale);
        expr addr;
        pr " ";
        expr value;
        pr ")"
    | Ast.If (c, t, e) ->
        pr "(if ";
        expr c;
        pr " (";
        List.iter stmt t;
        pr ") (";
        List.iter stmt e;
        pr "))"
    | Ast.While (c, b) ->
        pr "(while ";
        expr c;
        pr " (";
        List.iter stmt b;
        pr "))"
    | Ast.For (x, lo, hi, b) ->
        pr "(for %s " x;
        expr lo;
        pr " ";
        expr hi;
        pr " (";
        List.iter stmt b;
        pr "))"
    | Ast.Expr e ->
        pr "(expr ";
        expr e;
        pr ")"
    | Ast.Return None -> pr "(ret)"
    | Ast.Return (Some e) ->
        pr "(ret ";
        expr e;
        pr ")"
    | Ast.Break -> pr "(break)"
    | Ast.Continue -> pr "(continue)"
    | Ast.Print_int e ->
        pr "(print_int ";
        expr e;
        pr ")"
    | Ast.Print_char e ->
        pr "(print_char ";
        expr e;
        pr ")"
  in
  List.iter
    (fun (g : Ast.global) ->
      pr "(global %s %s %d" g.gname (scale_str g.gscale) g.length;
      (match g.init with
      | None -> ()
      | Some a ->
          pr " (init";
          Array.iter (fun v -> pr " %d" v) a;
          pr ")");
      pr ")\n")
    p.globals;
  List.iter
    (fun (f : Ast.func) ->
      pr "(func %s (%s)\n" f.name (String.concat " " f.params);
      List.iter
        (fun s ->
          pr "  ";
          stmt s;
          pr "\n")
        f.body;
      pr ")\n")
    p.funcs;
  Buffer.contents buf

let digest programs =
  programs
  |> List.map render
  |> String.concat "\n"
  |> Digest.string
  |> Digest.to_hex
