(** Seeded, fully deterministic kir program generation.

    [program ~model ~seed ~index] emits a valid program whose structural
    statistics are steered toward [model] (normally
    [Calibrate.reference ()]) by deficit-weighted quota sampling: every
    free choice — operator, immediate magnitude, statement kind, loop
    nesting, arity, fan-out, footprint — is drawn with weight
    proportional to how far that category lags its target share, with
    structurally-forced emissions (address arithmetic, masks, loop
    bounds) counted against the same quotas.  Population aggregates
    therefore converge on the envelope even though any single program
    quantizes it coarsely.

    Generated programs are safe by construction: array indices are
    masked to power-of-two bounds, division is unsigned with an [| 1]
    divisor, shifts use constant amounts, every loop has a constant trip
    count (or a protected down-counter) under a dynamic statement-budget,
    and the helper call graph is a DAG — so every program passes
    {!Pf_kir.Validate}, terminates, and prints at least one value.

    Determinism: the program is a pure function of [(model, seed,
    index)].  Each index derives its own splitmix64 stream, so
    generating index [i] never depends on indices [< i] — populations
    can be produced in parallel in any order. *)

val name : index:int -> string
(** ["gen-%06d"]. *)

val program :
  model:Calibrate.t -> seed:int -> index:int -> Pf_kir.Ast.program

val render : Pf_kir.Ast.program -> string
(** Canonical s-expression rendering — the byte-identity witness used by
    {!digest} and the same-seed QCheck property. *)

val digest : Pf_kir.Ast.program list -> string
(** MD5 hex digest over the canonical renderings. *)
