(* Windowed opcode-mix drift with hysteresis.  Integer category counts
   are summed before normalizing, so mixes are independent of hashtable
   iteration order; the segmentation itself is a deterministic single
   pass. *)

let categories =
  [| "alu"; "mul"; "load"; "store"; "stack"; "branch"; "other" |]

let cat_of_key (k : Pf_fits.Opkey.t) =
  match k with
  | Pf_fits.Opkey.K_dp _ -> 0
  | K_mul _ -> 1
  | K_mem { load = true; _ } -> 2
  | K_mem { load = false; _ } -> 3
  | K_push | K_pop -> 4
  | K_branch _ | K_bx -> 5
  | K_swi -> 6

let mix_of_profile (p : Pf_fits.Profile.t) =
  let totals = Array.make (Array.length categories) 0 in
  Hashtbl.iter
    (fun (pk : Pf_fits.Opkey.predicated) count ->
      let c = cat_of_key pk.Pf_fits.Opkey.key in
      totals.(c) <- totals.(c) + count)
    p.Pf_fits.Profile.dyn_keys;
  let sum = Array.fold_left ( + ) 0 totals in
  if sum = 0 then Array.map (fun _ -> 0.) totals
  else Array.map (fun c -> float_of_int c /. float_of_int sum) totals

let l1 a b =
  let d = ref 0. in
  Array.iteri (fun i x -> d := !d +. Float.abs (x -. b.(i))) a;
  !d

type config = { enter : float; exit_ : float; confirm : int }

let default_config = { enter = 0.35; exit_ = 0.20; confirm = 2 }

type segmentation = { boundaries : int list; drifts : float array }

let segment ?(config = default_config) mixes =
  let n = Array.length mixes in
  let drifts = Array.make n 0. in
  if n = 0 then { boundaries = []; drifts }
  else begin
    let k = Array.length mixes.(0) in
    let mean = Array.make k 0. in
    let count = ref 0 in
    let fold m =
      incr count;
      let c = float_of_int !count in
      Array.iteri (fun i x -> mean.(i) <- mean.(i) +. ((x -. mean.(i)) /. c)) m
    in
    let reset () =
      count := 0;
      Array.fill mean 0 k 0.
    in
    fold mixes.(0);
    let boundaries = ref [] in
    let armed = ref 0 in
    let armed_start = ref 0 in
    for w = 1 to n - 1 do
      let d = l1 mean mixes.(w) in
      drifts.(w) <- d;
      if d > config.enter then begin
        if !armed = 0 then armed_start := w;
        incr armed;
        if !armed >= config.confirm then begin
          (* confirmed: the phase changed where the drift first armed *)
          boundaries := !armed_start :: !boundaries;
          reset ();
          for j = !armed_start to w do
            fold mixes.(j)
          done;
          armed := 0
        end
      end
      else if d < config.exit_ then begin
        (* back in band: an unconfirmed excursion was a blip — drop it
           from the mean rather than polluting the phase statistics *)
        armed := 0;
        fold mixes.(w)
      end
      else if !armed = 0 then fold mixes.(w)
      (* dead band while armed: hold the armed count, fold nothing *)
    done;
    { boundaries = List.rev !boundaries; drifts }
  end

let phases seg ~n =
  if n <= 0 then []
  else
    let rec build start = function
      | [] -> [ (start, n) ]
      | b :: rest -> (start, b) :: build b rest
    in
    build 0 seg.boundaries
