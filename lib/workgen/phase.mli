(** Phase detection over execution profiles: windowed opcode-mix drift
    with hysteresis.

    A {e mix} is a normalized vector over a small fixed set of dynamic
    operation categories ({!mix_of_profile}).  {!segment} walks a
    sequence of mixes (one per scheduled workload, or one per execution
    window), maintains the running mean mix of the current phase, and
    opens a new phase when the L1 drift from that mean stays above
    [enter] for [confirm] consecutive windows (hysteresis: a single
    outlier window never triggers a resynthesis; the armed state clears
    as soon as drift falls back under [exit_]).  Each boundary is where
    an adaptive FITS core would reload its decoder data plane
    ({!Pf_fits.Translate.data_plane_bits}). *)

val categories : string array
(** The mix basis, in vector order: dynamic shares of
    [alu; mul; load; store; stack; branch; other]. *)

val mix_of_profile : Pf_fits.Profile.t -> float array
(** Normalized dynamic opcode mix of one profile.  Integer category
    totals are accumulated first, so the result is independent of
    hashtable iteration order.  All zeros for an empty profile. *)

val l1 : float array -> float array -> float
(** L1 distance between two mixes (sum of absolute component
    differences, range [0, 2] for normalized vectors). *)

type config = {
  enter : float;   (** drift that arms a phase change *)
  exit_ : float;   (** drift below which the armed state clears *)
  confirm : int;   (** consecutive armed windows before a boundary *)
}

val default_config : config
(** [enter = 0.35], [exit_ = 0.20], [confirm = 2]. *)

type segmentation = {
  boundaries : int list;
      (** indices (into the input sequence) where a new phase starts;
          never includes 0 — the first phase starts implicitly *)
  drifts : float array;
      (** per-window drift from the running phase mean, for reporting *)
}

val segment : ?config:config -> float array array -> segmentation
(** Deterministic single pass; [segment [||]] has no boundaries. *)

val phases : segmentation -> n:int -> (int * int) list
(** The phase extents [(start, stop))] covering [0..n-1] implied by the
    boundaries. *)
