(* Population campaign: generate -> prepare-once -> shared synthesis ->
   per-row shared/per-app evaluation -> degradation distribution, with
   optional phase-adaptive data-plane resynthesis on top.  Everything
   derived is a pure function of (count, seed, dict_budget, max_steps,
   adaptive); rows run on the Domain pool and come back in input order,
   so reports are byte-identical for any jobs value. *)

open Pf_util

type row = {
  r_index : int;
  r_name : string;
  r_arm_insns : int;
  r_steps : int;
  r_per_app_saving : float;
  r_shared_saving : float;
  r_degradation_pp : float;
  r_static_map_pct : float;
  r_spilled : int;
  r_reload_bits : int;
  r_shared_energy : float;
  r_mix : float array;
  r_output_ok : bool;
}

type distribution = {
  d_mean : float;
  d_p50 : float;
  d_p95 : float;
  d_max : float;
  d_histogram : (float * int) list;
}

type adaptive = {
  a_phases : (int * int) list;
  a_boundaries : int list;
  a_static_energy : float;
  a_adaptive_energy : float;
  a_saving_pct : float;
  a_static_reload_bits : int;
  a_adaptive_reload_bits : int;
}

type t = {
  count : int;
  seed : int;
  jobs : int;
  digest : string;
  calib_max_distance : float;
  calib_report : string;
  shared_dict_entries : int;
  shared_static_map_mean : float;
  rows : row list;
  failures : (int * string) list;
  dist : distribution;
  adaptive_r : adaptive option;
  gen_s : float;
  eval_s : float;
  total_steps : int;
}

let where = "workgen.population"

(* everything measured about one program before any shared decision *)
type prep = {
  p_index : int;
  p_prepared : Pf_multi.Suite.prepared;
  p_arm16_power : float;        (* avg power, ARM16 baseline *)
  p_arm16_insns : int;          (* dynamic source instructions *)
  p_per_app_saving : float;
  p_per_app_steps : int;
  p_per_app_out_ok : bool;
  p_mix : float array;
}

let avg_power = Pf_power.Account.avg_power

let prep_one ?max_steps ~index (program : Pf_kir.Ast.program) =
  let name = Generate.name ~index in
  let image = Pf_armgen.Compile.program program in
  let trace = Pf_cpu.Trace.create ~isize:4 () in
  let arm16 =
    Pf_cpu.Arm_run.run ~cache_cfg:Pf_harness.Experiment.cache_16k ?max_steps
      ~trace image
  in
  let dyn_counts =
    Pf_cpu.Trace.exec_counts trace ~base:image.Pf_arm.Image.code_base
      ~n:(Array.length image.Pf_arm.Image.words)
  in
  let profile = Pf_fits.Profile.of_image_counts image ~counts:dyn_counts in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let fits8 =
    Pf_fits.Run.run ~cache_cfg:Pf_harness.Experiment.cache_8k ?max_steps tr
  in
  let baseline = avg_power arm16.Pf_cpu.Arm_run.power in
  let bench =
    {
      Pf_mibench.Registry.name;
      result_name = name;
      category = "generated";
      program = (fun ~scale:_ -> program);
      power_study = false;
      unroll = 1;
    }
  in
  {
    p_index = index;
    p_prepared =
      {
        Pf_multi.Suite.bench;
        image;
        dyn_counts;
        profile;
        reference_output = arm16.Pf_cpu.Arm_run.output;
      };
    p_arm16_power = baseline;
    p_arm16_insns = arm16.Pf_cpu.Arm_run.instructions;
    p_per_app_saving = Stats.saving ~baseline (avg_power fits8.Pf_fits.Run.power);
    p_per_app_steps = fits8.Pf_fits.Run.arm_instructions;
    p_per_app_out_ok =
      String.equal fits8.Pf_fits.Run.output arm16.Pf_cpu.Arm_run.output;
    p_mix = Phase.mix_of_profile profile;
  }

(* shared-spec evaluation of one prepared row *)
let eval_shared ?max_steps (shared_spec : Pf_fits.Spec.t) (p : prep) =
  let image = p.p_prepared.Pf_multi.Suite.image in
  let tr = Pf_fits.Translate.translate shared_spec image in
  let fits8 =
    Pf_fits.Run.run ~cache_cfg:Pf_harness.Experiment.cache_8k ?max_steps tr
  in
  (tr.Pf_fits.Translate.reload, fits8)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (float_of_int (n - 1) *. p /. 100.) in
    sorted.(max 0 (min (n - 1) idx))

let bucket_width = 0.5

let histogram values =
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun v ->
      let b = int_of_float (Float.floor (v /. bucket_width)) in
      Hashtbl.replace tbl b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
    values;
  Hashtbl.fold (fun b c acc -> (float_of_int b *. bucket_width, c) :: acc) tbl []
  |> List.sort compare

let distribution_of values =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  {
    d_mean = Stats.mean (Array.to_list values);
    d_p50 = percentile sorted 50.;
    d_p95 = percentile sorted 95.;
    d_max = (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1));
    d_histogram = histogram values;
  }

let k_refill_per_bit =
  Pf_power.Account.Params.default.Pf_power.Account.Params.k_refill_per_bit

(* fleet schedule for the adaptive study: order rows by descending
   dynamic memory-op share (ties by index) so behaviourally similar
   workloads arrive clustered — the regime where phase detection pays *)
let schedule_of rows =
  let mem_share (r : row) = r.r_mix.(2) +. r.r_mix.(3) in
  List.sort
    (fun a b ->
      match compare (mem_share b) (mem_share a) with
      | 0 -> compare a.r_index b.r_index
      | c -> c)
    rows

let run_adaptive ?jobs ?dict_budget ?max_steps ~shared_spec ~preps rows =
  let sched = Array.of_list (schedule_of rows) in
  let n = Array.length sched in
  let prep_by_index = Hashtbl.create n in
  List.iter (fun p -> Hashtbl.replace prep_by_index p.p_index p) preps;
  let mixes = Array.map (fun r -> r.r_mix) sched in
  let seg = Phase.segment mixes in
  let extents = Phase.phases seg ~n in
  (* per phase: synthesize that phase's data plane from its members, keep
     the shared opcode plane, re-evaluate members under the reload *)
  let phase_results =
    List.map
      (fun (start, stop) ->
        let members =
          Array.to_list (Array.sub sched start (stop - start))
          |> List.filter_map (fun r -> Hashtbl.find_opt prep_by_index r.r_index)
        in
        let phase_shared =
          Pf_multi.Suite.synthesize_shared ?dict_budget
            (List.map (fun p -> p.p_prepared) members)
        in
        let pspec = phase_shared.Pf_multi.Suite.spec in
        let phase_spec =
          Pf_fits.Spec.with_data_plane shared_spec
            ~dict:pspec.Pf_fits.Spec.dict
            ~reglists:pspec.Pf_fits.Spec.reglists
        in
        let evals =
          Pool.map ?jobs
            (fun p ->
              ( p.p_index,
                Sim_error.protect ~where (fun () ->
                    eval_shared ?max_steps phase_spec p) ))
            members
        in
        (phase_spec, evals))
      extents
  in
  (* members that evaluated in the adaptive pass; energy sums compare the
     same row set on both sides *)
  let ok_adaptive = Hashtbl.create n in
  List.iter
    (fun (_, evals) ->
      List.iter
        (fun (idx, r) ->
          match r with
          | Ok (reload, fits8) -> Hashtbl.replace ok_adaptive idx (reload, fits8)
          | Error _ -> ())
        evals)
    phase_results;
  let static_rows =
    List.filter (fun r -> Hashtbl.mem ok_adaptive r.r_index) rows
  in
  let static_tail_bits =
    List.fold_left (fun acc r -> acc + r.r_reload_bits) 0 static_rows
  in
  let static_reload_bits =
    Pf_fits.Translate.data_plane_bits shared_spec + static_tail_bits
  in
  let static_energy =
    List.fold_left
      (fun acc r -> acc +. r.r_shared_energy)
      (k_refill_per_bit *. float_of_int static_reload_bits)
      static_rows
  in
  let adaptive_table_bits =
    List.fold_left
      (fun acc (phase_spec, _) ->
        acc + Pf_fits.Translate.data_plane_bits phase_spec)
      0 phase_results
  in
  let adaptive_tail_bits =
    Hashtbl.fold
      (fun _ ((reload : Pf_fits.Translate.reload), _) acc ->
        acc + reload.Pf_fits.Translate.reload_bits)
      ok_adaptive 0
  in
  let adaptive_reload_bits = adaptive_table_bits + adaptive_tail_bits in
  let adaptive_energy =
    Hashtbl.fold
      (fun _ (_, (fits8 : Pf_fits.Run.result)) acc ->
        acc +. fits8.Pf_fits.Run.power.Pf_power.Account.total)
      ok_adaptive
      (k_refill_per_bit *. float_of_int adaptive_reload_bits)
  in
  {
    a_phases = extents;
    a_boundaries = seg.Phase.boundaries;
    a_static_energy = static_energy;
    a_adaptive_energy = adaptive_energy;
    a_saving_pct = Stats.saving ~baseline:static_energy adaptive_energy;
    a_static_reload_bits = static_reload_bits;
    a_adaptive_reload_bits = adaptive_reload_bits;
  }

let run ?jobs ?dict_budget ?max_steps ?(adaptive = false) ~count ~seed () =
  if count < 1 then
    Sim_error.raisef Sim_error.Invalid_config ~where
      "population count must be positive (got %d)" count;
  let jobs_v = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let model = Calibrate.reference () in
  let t0 = Unix.gettimeofday () in
  let indices = List.init count Fun.id in
  let programs =
    Pool.map ?jobs (fun index -> Generate.program ~model ~seed ~index) indices
  in
  let digest = Generate.digest programs in
  let feats =
    Calibrate.merge_all (List.map Calibrate.features_of_program programs)
  in
  let calib_max_distance = Calibrate.max_distance ~reference:model feats in
  let calib_report = Calibrate.report ~reference:model feats in
  let t1 = Unix.gettimeofday () in
  (* prepare every program once, isolated *)
  let prep_results =
    Pool.map ?jobs
      (fun (index, program) ->
        ( index,
          Sim_error.protect ~where (fun () -> prep_one ?max_steps ~index program)
        ))
      (List.combine indices programs)
  in
  let preps =
    List.filter_map (fun (_, r) -> Result.to_option r) prep_results
  in
  let prep_failures =
    List.filter_map
      (fun (i, r) ->
        match r with
        | Ok _ -> None
        | Error e -> Some (i, Sim_error.to_string e))
      prep_results
  in
  if preps = [] then
    Sim_error.raisef Sim_error.Invalid_config ~where
      "every row of the population failed preparation";
  let shared =
    Pf_multi.Suite.synthesize_shared ?dict_budget
      (List.map (fun p -> p.p_prepared) preps)
  in
  let shared_spec = shared.Pf_multi.Suite.spec in
  let coverage = Array.of_list shared.Pf_multi.Suite.coverage in
  let shared_evals =
    Pool.map ?jobs
      (fun p ->
        ( p,
          Sim_error.protect ~where (fun () ->
              eval_shared ?max_steps shared_spec p) ))
      preps
  in
  let rows = ref [] in
  let eval_failures = ref [] in
  List.iteri
    (fun pos (p, r) ->
      match r with
      | Error e ->
          eval_failures := (p.p_index, Sim_error.to_string e) :: !eval_failures
      | Ok ((reload : Pf_fits.Translate.reload), fits8) ->
          let cov = coverage.(pos) in
          let shared_saving =
            Stats.saving ~baseline:p.p_arm16_power
              (avg_power fits8.Pf_fits.Run.power)
          in
          let out_ok =
            p.p_per_app_out_ok
            && String.equal fits8.Pf_fits.Run.output
                 p.p_prepared.Pf_multi.Suite.reference_output
          in
          rows :=
            {
              r_index = p.p_index;
              r_name = Pf_multi.Suite.name p.p_prepared;
              r_arm_insns =
                (Array.length p.p_prepared.Pf_multi.Suite.image.Pf_arm.Image.words);
              r_steps =
                p.p_arm16_insns + p.p_per_app_steps
                + fits8.Pf_fits.Run.arm_instructions;
              r_per_app_saving = p.p_per_app_saving;
              r_shared_saving = shared_saving;
              r_degradation_pp = p.p_per_app_saving -. shared_saving;
              r_static_map_pct = cov.Pf_multi.Suite.static_map_pct;
              r_spilled = cov.Pf_multi.Suite.spilled_imms;
              r_reload_bits = reload.Pf_fits.Translate.reload_bits;
              r_shared_energy =
                fits8.Pf_fits.Run.power.Pf_power.Account.total;
              r_mix = p.p_mix;
              r_output_ok = out_ok;
            }
            :: !rows)
    shared_evals;
  let rows = List.rev !rows in
  let failures =
    List.sort compare (prep_failures @ !eval_failures)
  in
  let dist =
    distribution_of
      (Array.of_list (List.map (fun r -> r.r_degradation_pp) rows))
  in
  let adaptive_r =
    if adaptive && rows <> [] then
      Some
        (run_adaptive ?jobs ?dict_budget ?max_steps ~shared_spec ~preps rows)
    else None
  in
  let eval_s = Unix.gettimeofday () -. t1 in
  {
    count;
    seed;
    jobs = jobs_v;
    digest;
    calib_max_distance;
    calib_report;
    shared_dict_entries = Array.length shared_spec.Pf_fits.Spec.dict;
    shared_static_map_mean =
      Stats.mean (List.map (fun r -> r.r_static_map_pct) rows);
    rows;
    failures;
    dist;
    adaptive_r;
    gen_s = t1 -. t0;
    eval_s;
    total_steps = List.fold_left (fun acc r -> acc + r.r_steps) 0 rows;
  }

(* ---------- deterministic report ---------- *)

let report (t : t) =
  let buf = Buffer.create 8192 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "population: %d programs requested, seed %d\n" t.count t.seed;
  pr "population digest: %s\n" t.digest;
  pr "%s" t.calib_report;
  pr "shared ISA: %d dictionary entries, mean static 1-to-1 map %.2f%%\n"
    t.shared_dict_entries t.shared_static_map_mean;
  pr "evaluated rows: %d ok, %d failed\n" (List.length t.rows)
    (List.length t.failures);
  pr "shared-ISA degradation (per-app minus shared FITS8 power saving, pp):\n";
  pr "  mean %.3f  p50 %.3f  p95 %.3f  max %.3f\n" t.dist.d_mean t.dist.d_p50
    t.dist.d_p95 t.dist.d_max;
  let peak =
    List.fold_left (fun acc (_, c) -> max acc c) 1 t.dist.d_histogram
  in
  List.iter
    (fun (lo, c) ->
      let bar = String.make (max 1 (c * 40 / peak)) '#' in
      pr "  [%6.2f, %6.2f)  %6d  %s\n" lo (lo +. bucket_width) c bar)
    t.dist.d_histogram;
  let worst =
    List.sort
      (fun a b ->
        match compare b.r_degradation_pp a.r_degradation_pp with
        | 0 -> compare a.r_index b.r_index
        | c -> c)
      t.rows
  in
  pr "worst rows by degradation:\n";
  pr "  %-12s %8s %8s %8s %7s %6s %9s\n" "name" "perapp%" "shared%" "degr.pp"
    "map%" "spill" "reload(b)";
  List.iteri
    (fun i r ->
      if i < 10 then
        pr "  %-12s %8.3f %8.3f %8.3f %7.2f %6d %9d\n" r.r_name
          r.r_per_app_saving r.r_shared_saving r.r_degradation_pp
          r.r_static_map_pct r.r_spilled r.r_reload_bits)
    worst;
  if t.failures <> [] then begin
    pr "failed rows:\n";
    List.iter (fun (i, e) -> pr "  %06d: %s\n" i e) t.failures
  end;
  (match t.adaptive_r with
  | None -> ()
  | Some a ->
      pr "adaptive resynthesis (phase-structured schedule):\n";
      pr "  phases: %d  boundaries at: %s\n" (List.length a.a_phases)
        (if a.a_boundaries = [] then "-"
         else String.concat ", " (List.map string_of_int a.a_boundaries));
      pr "  static:   energy %.1f (reload %d bits charged)\n" a.a_static_energy
        a.a_static_reload_bits;
      pr "  adaptive: energy %.1f (reload %d bits charged)\n"
        a.a_adaptive_energy a.a_adaptive_reload_bits;
      pr "  adaptive saving over static: %.3f%%\n" a.a_saving_pct);
  let diverged = List.filter (fun r -> not r.r_output_ok) t.rows in
  if diverged <> [] then
    pr "DIVERGENT OUTPUT on %d rows: %s\n" (List.length diverged)
      (String.concat ", " (List.map (fun r -> r.r_name) diverged));
  Buffer.contents buf
