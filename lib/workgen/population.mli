(** Population-scale shared-ISA campaigns over generated workloads.

    [run ~count ~seed ()] generates [count] calibrated programs
    ({!Generate}), prepares each one exactly once (compile, one traced
    ARM16 execution that doubles as power baseline and profiling run),
    synthesizes one shared FITS ISA over the whole population
    ({!Pf_multi.Suite.synthesize_shared}), and measures every program's
    FITS8 power saving under its own per-application ISA and under the
    shared one — the population-scale version of the paper's
    multi-program degradation question, reported as a distribution
    (histogram, p50/p95/max) instead of 21 table rows.

    Rows are generated and evaluated on a {!Pf_util.Pool} of worker
    domains; every derived number, and the whole {!report} string, is a
    pure function of [(count, seed, dict_budget, max_steps, adaptive)] —
    independent of [jobs].  Per-row failures are isolated with
    {!Pf_util.Sim_error.protect} and reported, never raised.

    With [~adaptive:true] the evaluated population is additionally run
    through phase-adaptive resynthesis: rows are ordered into a
    phase-structured fleet schedule (by descending dynamic memory-op
    share — emulating workloads arriving in behavioural clusters),
    {!Phase.segment} finds the opcode-mix phase boundaries, and each
    phase gets its own dictionary/register-list tables synthesized from
    its members and installed over the shared opcode plane via
    {!Pf_fits.Spec.with_data_plane} — the §3.1 decoder reload.  Energy
    accounting charges every data-plane load at
    {!Pf_power.Account.Params.k_refill_per_bit} per bit: the static core
    pays one shared-table load plus each program's per-program tail
    ({!Pf_fits.Translate.reload}); the adaptive core pays a full table
    load per phase plus its (smaller) tails. *)

type row = {
  r_index : int;
  r_name : string;
  r_arm_insns : int;          (** static ARM instructions *)
  r_steps : int;              (** source instructions simulated (all runs) *)
  r_per_app_saving : float;   (** FITS8-vs-ARM16 avg-power saving, own ISA *)
  r_shared_saving : float;    (** same under the population-shared ISA *)
  r_degradation_pp : float;   (** per-app minus shared, percentage points *)
  r_static_map_pct : float;   (** 1-to-1 mapping under the shared ISA *)
  r_spilled : int;            (** dict entries beyond the shared dictionary *)
  r_reload_bits : int;        (** per-program data-plane tail, in bits *)
  r_shared_energy : float;    (** FITS8 total energy under the shared ISA *)
  r_mix : float array;        (** dynamic opcode mix ({!Phase.categories}) *)
  r_output_ok : bool;         (** both FITS runs reproduced the ARM output *)
}

type distribution = {
  d_mean : float;
  d_p50 : float;
  d_p95 : float;
  d_max : float;
  d_histogram : (float * int) list;
      (** (bucket lower bound in pp, row count), 0.5 pp buckets *)
}

type adaptive = {
  a_phases : (int * int) list;  (** schedule extents [start, stop) *)
  a_boundaries : int list;
  a_static_energy : float;      (** shared ISA + reload charges *)
  a_adaptive_energy : float;    (** per-phase data planes + reload charges *)
  a_saving_pct : float;         (** of adaptive over static *)
  a_static_reload_bits : int;
  a_adaptive_reload_bits : int;
}

type t = {
  count : int;
  seed : int;
  jobs : int;
  digest : string;              (** MD5 over canonical program renderings *)
  calib_max_distance : float;
  calib_report : string;
  shared_dict_entries : int;
  shared_static_map_mean : float;
  rows : row list;              (** successful rows, index order *)
  failures : (int * string) list;
  dist : distribution;
  adaptive_r : adaptive option;
  gen_s : float;                (** wall clock: generation (stderr only) *)
  eval_s : float;               (** wall clock: prepare+synthesis+eval *)
  total_steps : int;            (** sum of [r_steps] *)
}

val run :
  ?jobs:int ->
  ?dict_budget:int ->
  ?max_steps:int ->
  ?adaptive:bool ->
  count:int ->
  seed:int ->
  unit ->
  t
(** @raise Pf_util.Sim_error.Error ([Invalid_config]) for [count < 1] or
    if every row failed preparation. *)

val report : t -> string
(** The deterministic stdout report: digest, calibration, shared-ISA
    summary, degradation distribution, worst rows, failures, and the
    adaptive section when present.  Contains no timing or host
    information — byte-identical for any [jobs]. *)
