(* Allocation-freedom guards: the step loops must not allocate per dynamic
   instruction.  A 100k-step run is measured with [Gc.minor_words] deltas;
   setup (image copy, cache arrays, predecode) allocates O(static) words
   and big arrays go straight to the major heap, so a generous fixed bound
   separates "constant" from "per-step" cleanly — even a single boxed
   float or tuple per step would cost >200k words.  If one of these tests
   starts failing, some hot-path edit reintroduced per-step boxing
   (tuples, closures, [Some]-boxed optional arguments, or stores to
   mutable float fields of mixed records). *)

module A = Pf_arm.Insn

let budget = 50_000

(* mov r0, #51200; loop: subs r0, r0, #1; bne loop; swi #0
   — 102,402 dynamic instructions, no prints. *)
let loop_image () =
  let imm v = Option.get (A.encode_imm_operand v) in
  let insns =
    [
      A.Dp { cond = A.AL; op = A.MOV; s = false; rd = 0; rn = 0;
             op2 = imm 51200 };
      A.Dp { cond = A.AL; op = A.SUB; s = true; rd = 0; rn = 0;
             op2 = imm 1 };
      (* branch at 0x8008 targeting 0x8004: offset relative to pc+8 *)
      A.B { cond = A.NE; link = false; offset = -12 };
      A.Swi { cond = A.AL; number = 0 };
    ]
  in
  let words = Array.of_list (List.map Pf_arm.Encode.encode insns) in
  Pf_arm.Image.make ~entry:0x8000 words

let minor_delta f =
  let before = Gc.minor_words () in
  f ();
  int_of_float (Gc.minor_words () -. before)

let check_budget what delta =
  if delta >= budget then
    Alcotest.failf "%s allocated %d minor words over a ~100k-step run \
                    (budget %d): a per-step allocation crept back in"
      what delta budget

let test_arm_run_alloc () =
  let image = loop_image () in
  (* warm up: one full run outside the measurement *)
  ignore (Pf_cpu.Arm_run.run image);
  let delta = minor_delta (fun () -> ignore (Pf_cpu.Arm_run.run image)) in
  check_budget "Arm_run.run (predecoded, full stack)" delta

let test_pexec_run_alloc () =
  let image = loop_image () in
  let p = Pf_arm.Pexec.compile image in
  ignore (Pf_arm.Exec.create image);
  let st = Pf_arm.Exec.create image in
  let delta = minor_delta (fun () -> Pf_arm.Pexec.run p st) in
  check_budget "Pexec.run (bare interpreter)" delta

(* The compiled engine discovers and compiles blocks at run start —
   O(static) allocation, same bucket as predecode — after which the
   block-dispatch loop must be as allocation-free as the per-instruction
   loops above.  A closure or tuple born per block execution (~34k block
   runs here) would blow the budget. *)
let test_arm_compiled_alloc () =
  let image = loop_image () in
  let run () =
    ignore (Pf_cpu.Arm_run.run ~engine:Pf_cpu.Arm_run.Compiled image)
  in
  run ();
  check_budget "Arm_run.run (compiled engine)" (minor_delta run)

let test_fits_run_alloc () =
  let image = loop_image () in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  ignore (Pf_fits.Run.run tr);
  let delta = minor_delta (fun () -> ignore (Pf_fits.Run.run tr)) in
  check_budget "Fits.Run.run (predecoded, full stack)" delta

let test_fits_compiled_alloc () =
  let image = loop_image () in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let run () = ignore (Pf_fits.Run.run ~engine:Pf_fits.Run.Compiled tr) in
  run ();
  check_budget "Fits.Run.run (compiled engine)" (minor_delta run)

(* The trace-replay paths the generality harness leans on (one recorded
   execution, N cheap replays) must not allocate per trace event either —
   a boxed record per event would make a 21-benchmark LOO campaign pay
   GC costs proportional to total dynamic instructions. *)
let cache_8k = Pf_cache.Icache.config ~size_bytes:(8 * 1024) ()

let test_arm_replay_alloc () =
  let image = loop_image () in
  let trace = Pf_cpu.Trace.create ~isize:4 () in
  let r = Pf_cpu.Arm_run.run ~trace image in
  let replay () =
    ignore
      (Pf_cpu.Arm_run.replay ~cache_cfg:cache_8k
         ~output:r.Pf_cpu.Arm_run.output image trace)
  in
  replay ();
  check_budget "Arm_run.replay (trace replay)" (minor_delta replay)

let test_fits_replay_alloc () =
  let image = loop_image () in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let trace = Pf_cpu.Trace.create ~isize:2 () in
  let r = Pf_fits.Run.run ~trace tr in
  let replay () =
    ignore (Pf_fits.Run.replay ~cache_cfg:cache_8k ~like:r tr trace)
  in
  replay ();
  check_budget "Fits.Run.replay (trace replay)" (minor_delta replay)

(* The DSE inner loop replays one trace across a whole geometry grid; its
   per-event cost must stay allocation-free too (the per-geometry result
   records are O(grid), inside budget). *)
let test_dse_sweep_alloc () =
  let image = loop_image () in
  let trace = Pf_cpu.Trace.create ~isize:4 () in
  let r = Pf_cpu.Arm_run.run ~trace image in
  let geometries = Pf_dse.Space.geometries Pf_dse.Space.smoke in
  let sweep () =
    ignore
      (Pf_dse.Explore.arm_sweep ~image ~output:r.Pf_cpu.Arm_run.output
         ~geometries trace)
  in
  sweep ();
  check_budget "Explore.arm_sweep (6-geometry DSE replay loop)"
    (minor_delta sweep)

(* The single-pass all-geometry kernel walks the same trace once while
   updating every stack profile; its per-event cost must be
   allocation-free as well (profiles, stacks and per-lane accumulators
   are O(grid), allocated in setup).  Measured over the dense grid's
   geometry count so a per-event-per-profile box would blow the budget
   by orders of magnitude. *)
let test_single_pass_sweep_alloc () =
  let image = loop_image () in
  let trace = Pf_cpu.Trace.create ~isize:4 () in
  ignore (Pf_cpu.Arm_run.run ~trace image);
  let geometries = Pf_dse.Space.geometries Pf_dse.Space.full in
  let fetch_data addr = Pf_arm.Image.word_at image addr in
  let run () = ignore (Pf_dse.Sweep.run ~geometries ~fetch_data trace) in
  run ();
  check_budget "Sweep.run (36-geometry single-pass kernel)"
    (minor_delta run)

let tests =
  [
    Alcotest.test_case "ARM step loop is allocation-free" `Quick
      test_arm_run_alloc;
    Alcotest.test_case "bare Pexec loop is allocation-free" `Quick
      test_pexec_run_alloc;
    Alcotest.test_case "FITS step loop is allocation-free" `Quick
      test_fits_run_alloc;
    Alcotest.test_case "ARM compiled block loop is allocation-free" `Quick
      test_arm_compiled_alloc;
    Alcotest.test_case "FITS compiled block loop is allocation-free" `Quick
      test_fits_compiled_alloc;
    Alcotest.test_case "ARM trace replay is allocation-free" `Quick
      test_arm_replay_alloc;
    Alcotest.test_case "FITS trace replay is allocation-free" `Quick
      test_fits_replay_alloc;
    Alcotest.test_case "DSE geometry sweep is allocation-free" `Quick
      test_dse_sweep_alloc;
    Alcotest.test_case "single-pass sweep kernel is allocation-free" `Quick
      test_single_pass_sweep_alloc;
  ]
