(* Unit and property tests for the I-cache simulator. *)

module C = Pf_cache.Icache

let cfg ?(block = 32) ?(assoc = 2) size = C.config ~block_bytes:block ~assoc ~size_bytes:size ()

let touch t addr = ignore (C.access t ~addr ~data:0)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_geometry () =
  let c = C.config ~size_bytes:(16 * 1024) () in
  check_int "sets (sa1100-like)" 16 (C.sets c);
  check_int "tag bits" 23 (C.tag_bits c);
  let dm = cfg ~assoc:1 1024 in
  check_int "direct-mapped sets" 32 (C.sets dm)

let test_cold_misses () =
  let t = C.create (cfg 1024) in
  touch t 0;
  touch t 0;
  touch t 4;
  (* same block *)
  check_int "one compulsory miss" 1 (C.stats_misses t);
  check_int "three accesses" 3 (C.stats_accesses t);
  touch t 32;
  check_int "next block misses" 2 (C.stats_misses t)

let test_lru_eviction () =
  (* 2-way, block 32: set count = 1024/32/2 = 16; three blocks mapping to
     set 0 are 0, 16*32=512, 1024 *)
  let t = C.create (cfg 1024) in
  touch t 0;
  touch t 512;
  touch t 0;
  (* 0 is now MRU; inserting 1024 must evict 512, not 0 *)
  touch t 1024;
  let misses = C.stats_misses t in
  touch t 0;
  check_int "0 still resident" misses (C.stats_misses t);
  touch t 512;
  check_int "512 was evicted" (misses + 1) (C.stats_misses t)

let test_direct_mapped_conflict () =
  let t = C.create (cfg ~assoc:1 1024) in
  (* two addresses 1024 apart share the single way of a set *)
  touch t 0;
  touch t 1024;
  touch t 0;
  touch t 1024;
  check_int "ping-pong conflicts" 4 (C.stats_misses t)

let test_single_set () =
  (* 1024 B / 32 B blocks / 32-way: exactly one set, fully associative *)
  let c = cfg ~assoc:32 1024 in
  check_int "single set" 1 (C.sets c);
  let t = C.create c in
  for i = 0 to 31 do
    touch t (i * 32)
  done;
  check_int "fills every way" 32 (C.stats_misses t);
  touch t 0;
  check_int "whole working set resident" 32 (C.stats_misses t)

let test_tag_flips () =
  let t = C.create (cfg 1024) in
  touch t 0;
  (* addr 0 sits at set 0, MRU way 0 = slot 0 *)
  C.schedule_tag_flip t ~at_access:2 ~slot:0 ~bit:0;
  touch t 0;
  check_int "flip applied on schedule" 1 (C.flips_applied t);
  check_int "corrupted tag turns a hit into a miss" 2 (C.stats_misses t);
  touch t 0;
  check_int "refetch restores the line" 2 (C.stats_misses t);
  (* an invalid way has no stored tag to corrupt *)
  let t2 = C.create (cfg 1024) in
  C.schedule_tag_flip t2 ~at_access:1 ~slot:1 ~bit:3;
  touch t2 0;
  check_int "flip on invalid line is a no-op" 0 (C.flips_applied t2);
  check_bool "out-of-range slot rejected" true
    (try
       C.schedule_tag_flip t ~at_access:1 ~slot:(C.slots t) ~bit:0;
       false
     with Invalid_argument _ -> true)

let test_classification () =
  let t = C.create ~classify:true (cfg ~assoc:1 1024) in
  touch t 0;
  touch t 1024;
  (* both compulsory *)
  touch t 0;
  (* 0 would HIT in a fully-associative cache of the same size: conflict *)
  check_int "compulsory" 2 (C.stats_compulsory t);
  check_int "conflict" 1 (C.stats_conflict t);
  check_int "capacity" 0 (C.stats_capacity t);
  (* stream more blocks than the cache holds: capacity misses appear *)
  let t2 = C.create ~classify:true (cfg ~assoc:2 1024) in
  for round = 1 to 2 do
    ignore round;
    for b = 0 to 63 do
      touch t2 (b * 32)
    done
  done;
  check_bool "capacity misses observed" true (C.stats_capacity t2 > 0)

let test_activity_counters () =
  let t = C.create (cfg 1024) in
  ignore (C.access t ~addr:0 ~data:0xFF);
  let r = C.access t ~addr:0 ~data:0x00 in
  check_int "eight output toggles" 8 r.C.toggles;
  check_int "accumulated over both accesses" 16 (C.output_toggles t);
  check_int "refill words counted" (32 / 4) (C.refill_words t);
  check_int "miss refilled words in result" 0 r.C.refilled_words

let test_miss_rate_and_reset () =
  let t = C.create (cfg 1024) in
  touch t 0;
  touch t 0;
  Alcotest.(check (float 1.0)) "per million" 500000.0
    (C.miss_rate_per_million t);
  C.reset_stats t;
  check_int "stats cleared" 0 (C.stats_accesses t);
  touch t 0;
  check_int "contents survive reset" 0 (C.stats_misses t)

let test_reset_toggle_baseline () =
  (* regression: reset_stats used to leave last_out/last_idx at their
     pre-reset values, so the first access after a reset charged Hamming
     distance against the previous stream's baseline *)
  let t = C.create (cfg 1024) in
  let r1 = C.access t ~addr:0 ~data:0xFF in
  check_int "first stream: 8 output toggles" 8 r1.C.toggles;
  C.reset_stats t;
  let r2 = C.access t ~addr:0 ~data:0xFF in
  check_int "fresh baseline after reset: 8 again, not 0" 8 r2.C.toggles;
  check_int "accumulated counter restarted" 8 (C.output_toggles t)

let test_shadow_lru_order () =
  (* the intrusive doubly-linked shadow LRU must evict in recency order,
     not insertion order.  Direct-mapped 1024 B / 32 B: 32 sets, shadow
     capacity 32 blocks; block b maps to set (b mod 32). *)
  let t = C.create ~classify:true (cfg ~assoc:1 1024) in
  for b = 0 to 32 do
    touch t (b * 32)
  done;
  (* 33 distinct blocks: all compulsory; shadow kept the 32 most recent
     (1..32), evicting block 0 *)
  check_int "all compulsory" 33 (C.stats_compulsory t);
  touch t 0;
  check_int "LRU-evicted block re-misses as capacity" 1 (C.stats_capacity t);
  touch t (32 * 32);
  (* block 32 lost its cache line to block 0 but is still recent in the
     fully-associative shadow: a conflict miss *)
  check_int "recent block re-misses as conflict" 1 (C.stats_conflict t);
  (* a cache *hit* must refresh shadow recency: block 2 hits below, so the
     next shadow evictions take blocks 3 and 4 — not 2 *)
  touch t (2 * 32);
  touch t (40 * 32);
  touch t (35 * 32);
  touch t (3 * 32);
  (* block 3 was shadow-evicted (it was LRU once 2 refreshed): capacity *)
  check_int "eviction follows recency, not insertion" 2 (C.stats_capacity t);
  touch t (34 * 32);
  touch t (2 * 32);
  (* block 2 survived in the shadow thanks to the hit-refresh: conflict *)
  check_int "hit-refreshed block survived in shadow" 2 (C.stats_conflict t)

let test_invalid_configs () =
  (* degenerate geometries must fail at [config] with a structured
     Invalid_config naming the offending field — DSE grids hit these
     corners as ordinary inputs, and the explorer classifies the error *)
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  let rejected what ~sub ~block ~assoc size =
    match C.config ~block_bytes:block ~assoc ~size_bytes:size () with
    | _ -> Alcotest.failf "%s: config %d/%dB/%dw accepted" what size block assoc
    | exception Pf_util.Sim_error.Error e ->
        Alcotest.(check bool) (what ^ ": kind Invalid_config") true
          (e.Pf_util.Sim_error.kind = Pf_util.Sim_error.Invalid_config);
        Alcotest.(check bool)
          (Printf.sprintf "%s: detail %S names %S" what
             e.Pf_util.Sim_error.detail sub)
          true
          (contains ~sub e.Pf_util.Sim_error.detail)
  in
  rejected "non-power-of-two size" ~sub:"size_bytes=3000" ~block:32 ~assoc:2
    3000;
  rejected "non-power-of-two block" ~sub:"block_bytes=24" ~block:24 ~assoc:2
    1024;
  rejected "sub-word block" ~sub:"block_bytes=2" ~block:2 ~assoc:1 1024;
  rejected "non-power-of-two assoc" ~sub:"assoc=3" ~block:32 ~assoc:3 1024;
  rejected "zero assoc" ~sub:"assoc=0" ~block:32 ~assoc:0 1024;
  rejected "more ways than lines" ~sub:"zero sets" ~block:32 ~assoc:64 1024;
  rejected "cache smaller than a block" ~sub:"zero lines" ~block:64 ~assoc:1
    32;
  (* every offending field is listed, not just the first *)
  (match C.config ~block_bytes:24 ~assoc:3 ~size_bytes:3000 () with
  | _ -> Alcotest.fail "triply-degenerate config accepted"
  | exception Pf_util.Sim_error.Error e ->
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (Printf.sprintf "lists %S" sub)
            true
            (contains ~sub e.Pf_util.Sim_error.detail))
        [ "size_bytes=3000"; "block_bytes=24"; "assoc=3" ]);
  (* a record literal bypasses [config]; [create] re-validates *)
  Alcotest.(check bool) "create re-validates record literals" true
    (try
       ignore
         (C.create { C.size_bytes = 1024; block_bytes = 32; assoc = 64 });
       false
     with Pf_util.Sim_error.Error _ -> true)

(* properties *)

let trace_gen = QCheck.Gen.(list_size (int_range 1 500) (int_bound 0xFFFF))

let prop_misses_bounded =
  QCheck.Test.make ~name:"misses never exceed accesses" ~count:100
    (QCheck.make trace_gen)
    (fun trace ->
      let t = C.create (cfg 1024) in
      List.iter (fun a -> touch t (a land lnot 3)) trace;
      C.stats_misses t <= C.stats_accesses t
      && C.stats_accesses t = List.length trace)

let prop_bigger_cache_fewer_misses =
  QCheck.Test.make
    ~name:"doubling the size (same assoc scaling) never adds misses"
    ~count:100 (QCheck.make trace_gen)
    (fun trace ->
      (* full-LRU inclusion: compare fully-associative caches *)
      let small =
        C.create (C.config ~block_bytes:32 ~assoc:32 ~size_bytes:1024 ())
      in
      let big =
        C.create (C.config ~block_bytes:32 ~assoc:64 ~size_bytes:2048 ())
      in
      List.iter
        (fun a ->
          let a = a land lnot 3 in
          touch small a;
          touch big a)
        trace;
      C.stats_misses big <= C.stats_misses small)

let prop_repeat_trace_all_hits =
  QCheck.Test.make
    ~name:"replaying a small working set hits after warmup" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 20) (int_bound 31)))
    (fun blocks ->
      let t = C.create (cfg ~assoc:32 1024) in
      (* 32 blocks capacity, working set <= 20 distinct blocks *)
      List.iter (fun b -> touch t (b * 32)) blocks;
      let warm = C.stats_misses t in
      List.iter (fun b -> touch t (b * 32)) blocks;
      C.stats_misses t = warm)

let tests =
  [
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "cold misses" `Quick test_cold_misses;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "direct-mapped conflicts" `Quick
      test_direct_mapped_conflict;
    Alcotest.test_case "single-set edge config" `Quick test_single_set;
    Alcotest.test_case "scheduled tag flips" `Quick test_tag_flips;
    Alcotest.test_case "miss classification" `Quick test_classification;
    Alcotest.test_case "toggle/refill counters" `Quick test_activity_counters;
    Alcotest.test_case "miss rate and reset" `Quick test_miss_rate_and_reset;
    Alcotest.test_case "reset clears toggle baselines" `Quick
      test_reset_toggle_baseline;
    Alcotest.test_case "shadow LRU eviction order" `Quick
      test_shadow_lru_order;
    Alcotest.test_case "invalid configs rejected" `Quick test_invalid_configs;
    QCheck_alcotest.to_alcotest prop_misses_bounded;
    QCheck_alcotest.to_alcotest prop_bigger_cache_fewer_misses;
    QCheck_alcotest.to_alcotest prop_repeat_trace_all_hits;
  ]
