(* Three-way engine differential: the predecoded AND the block-compiled
   engines must produce *bit-identical* results to the reference
   interpreter — cycles, IPC, toggles (via power switching energy), miss
   classification, power report and program output — on every benchmark,
   for both the ARM and FITS streams and both cache geometries.  16 KB
   runs execute all three engines directly; the 8 KB data points replay
   each engine's own recorded trace (the harness's own structure), so a
   divergence in anything the trace captures — including the compiled
   engine's block-granular recording — shows up there too. *)

module R = Pf_mibench.Registry
module AR = Pf_cpu.Arm_run
module FR = Pf_fits.Run
module C = Pf_cache.Icache

let cache_16k = C.config ~size_bytes:(16 * 1024) ()
let cache_8k = C.config ~size_bytes:(8 * 1024) ()

let pp_arm (r : AR.result) =
  Printf.sprintf
    "{instrs=%d cycles=%d ipc=%.17g fetches=%d accesses=%d misses=%d \
     switching=%.17g total=%.17g peak=%.17g out=%d}"
    r.AR.instructions r.AR.cycles r.AR.ipc r.AR.fetch_accesses
    r.AR.cache_accesses r.AR.cache_misses
    r.AR.power.Pf_power.Account.switching r.AR.power.Pf_power.Account.total
    r.AR.power.Pf_power.Account.peak_power (String.length r.AR.output)

let pp_fits (r : FR.result) =
  Printf.sprintf
    "{fits=%d arm=%d cycles=%d ipc=%.17g fetches=%d accesses=%d misses=%d \
     switching=%.17g total=%.17g peak=%.17g out=%d}"
    r.FR.fits_instructions r.FR.arm_instructions r.FR.cycles r.FR.ipc
    r.FR.fetch_accesses r.FR.cache_accesses r.FR.cache_misses
    r.FR.power.Pf_power.Account.switching r.FR.power.Pf_power.Account.total
    r.FR.power.Pf_power.Account.peak_power (String.length r.FR.output)

let check_arm what ~oracle a b =
  if a <> b then
    Alcotest.failf "%s: engines diverge\n  %s: %s\n  candidate: %s" what
      oracle (pp_arm a) (pp_arm b)

let check_fits what ~oracle a b =
  if a <> b then
    Alcotest.failf "%s: engines diverge\n  %s: %s\n  candidate: %s" what
      oracle (pp_fits a) (pp_fits b)

let translate_benchmark (b : R.benchmark) =
  let p = b.R.program ~scale:1 in
  let image = Pf_armgen.Compile.program ~unroll:b.R.unroll p in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  (image, tr)

let test_benchmark (b : R.benchmark) () =
  let name = b.R.name in
  let image, tr = translate_benchmark b in
  (* ARM stream: direct 16 KB runs under all three engines, replayed 8 KB
     runs from each engine's own recording *)
  let tr_ref = Pf_cpu.Trace.create ~isize:4 () in
  let tr_pre = Pf_cpu.Trace.create ~isize:4 () in
  let tr_cmp = Pf_cpu.Trace.create ~isize:4 () in
  let a_ref =
    AR.run ~engine:AR.Reference ~cache_cfg:cache_16k ~trace:tr_ref image
  in
  let a_pre = AR.run ~cache_cfg:cache_16k ~trace:tr_pre image in
  let a_cmp =
    AR.run ~engine:AR.Compiled ~cache_cfg:cache_16k ~trace:tr_cmp image
  in
  check_arm (name ^ "/arm/16k/pre") ~oracle:"reference" a_ref a_pre;
  check_arm (name ^ "/arm/16k/cmp") ~oracle:"reference" a_ref a_cmp;
  let a_ref8 =
    AR.replay ~cache_cfg:cache_8k ~output:a_ref.AR.output image tr_ref
  in
  let a_pre8 =
    AR.replay ~cache_cfg:cache_8k ~output:a_pre.AR.output image tr_pre
  in
  let a_cmp8 =
    AR.replay ~cache_cfg:cache_8k ~output:a_cmp.AR.output image tr_cmp
  in
  check_arm (name ^ "/arm/8k/pre") ~oracle:"reference" a_ref8 a_pre8;
  check_arm (name ^ "/arm/8k/cmp") ~oracle:"reference" a_ref8 a_cmp8;
  (* FITS stream *)
  let ft_ref = Pf_cpu.Trace.create ~isize:2 () in
  let ft_pre = Pf_cpu.Trace.create ~isize:2 () in
  let ft_cmp = Pf_cpu.Trace.create ~isize:2 () in
  let f_ref =
    FR.run ~engine:FR.Reference ~cache_cfg:cache_16k ~trace:ft_ref tr
  in
  let f_pre = FR.run ~cache_cfg:cache_16k ~trace:ft_pre tr in
  let f_cmp =
    FR.run ~engine:FR.Compiled ~cache_cfg:cache_16k ~trace:ft_cmp tr
  in
  check_fits (name ^ "/fits/16k/pre") ~oracle:"reference" f_ref f_pre;
  check_fits (name ^ "/fits/16k/cmp") ~oracle:"reference" f_ref f_cmp;
  let f_ref8 = FR.replay ~cache_cfg:cache_8k ~like:f_ref tr ft_ref in
  let f_pre8 = FR.replay ~cache_cfg:cache_8k ~like:f_pre tr ft_pre in
  let f_cmp8 = FR.replay ~cache_cfg:cache_8k ~like:f_cmp tr ft_cmp in
  check_fits (name ^ "/fits/8k/pre") ~oracle:"reference" f_ref8 f_pre8;
  check_fits (name ^ "/fits/8k/cmp") ~oracle:"reference" f_ref8 f_cmp8

(* Miss classification goes through the shadow-LRU path that the plain
   runs skip: compare compulsory/capacity/conflict on a subset, for all
   three engines. *)
let test_classification () =
  let subset = List.filteri (fun i _ -> i mod 7 = 0) R.all in
  List.iter
    (fun (b : R.benchmark) ->
      let image, tr = translate_benchmark b in
      let classes engine =
        let cache = C.create ~classify:true cache_16k in
        ignore (AR.run ~engine ~cache ~cache_cfg:cache_16k image);
        (C.stats_compulsory cache, C.stats_capacity cache,
         C.stats_conflict cache)
      in
      let fclasses engine =
        let cache = C.create ~classify:true cache_16k in
        ignore (FR.run ~engine ~cache ~cache_cfg:cache_16k tr);
        (C.stats_compulsory cache, C.stats_capacity cache,
         C.stats_conflict cache)
      in
      let ref_c = classes AR.Reference in
      Alcotest.(check (triple int int int))
        (b.R.name ^ ": arm miss classes pre")
        ref_c (classes AR.Predecoded);
      Alcotest.(check (triple int int int))
        (b.R.name ^ ": arm miss classes cmp")
        ref_c (classes AR.Compiled);
      let fref_c = fclasses FR.Reference in
      Alcotest.(check (triple int int int))
        (b.R.name ^ ": fits miss classes pre")
        fref_c (fclasses FR.Predecoded);
      Alcotest.(check (triple int int int))
        (b.R.name ^ ": fits miss classes cmp")
        fref_c (fclasses FR.Compiled))
    subset

let tests =
  List.map
    (fun (b : R.benchmark) ->
      Alcotest.test_case
        ("ref=pre=cmp: " ^ b.R.name)
        `Quick (test_benchmark b))
    R.all
  @ [ Alcotest.test_case "miss classification ref=pre=cmp" `Quick
        test_classification ]
