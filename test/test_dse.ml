(* Design-space exploration subsystem: space validation and enumeration,
   Pareto extraction, analytic power-scaling calibration, and the headline
   acceptance property — explored grid points at the paper geometries
   reproduce the experiment harness numbers bit-for-bit, for any --jobs. *)

module Space = Pf_dse.Space
module Pareto = Pf_dse.Pareto
module Explore = Pf_dse.Explore
module C = Pf_cache.Icache
module E = Pf_harness.Experiment

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_exact = Alcotest.(check (float 0.0))

(* ---- Space ------------------------------------------------------------- *)

let test_space_grids () =
  let smoke = Space.cardinality Space.smoke in
  check_int "smoke geometries" 6 smoke.Space.feasible;
  check_int "smoke variants" 2 smoke.Space.variants;
  check_int "smoke skipped" 0 smoke.Space.skipped;
  let full = Space.cardinality Space.full in
  check_int "full combos" 36 full.Space.combos;
  check_bool "full grid meets the >= 24 geometry bar" true
    (full.Space.feasible >= 24);
  check_int "full points per benchmark" (full.Space.feasible * 2)
    full.Space.points;
  List.iter
    (fun space ->
      let geoms = Space.geometries space in
      check_bool "contains the 16K paper point" true
        (List.mem Space.cache_16k geoms);
      check_bool "contains the 8K paper point" true
        (List.mem Space.cache_8k geoms))
    [ Space.smoke; Space.full ];
  (* the cost model is the 2 executions + 2N replays contract *)
  let cost = Space.cost ~benchmarks:21 Space.full in
  check_int "2 executions per benchmark" (21 * 2) cost.Space.executions;
  check_int "2N replays per benchmark"
    (21 * 2 * full.Space.feasible)
    cost.Space.replays

let test_space_feasibility_filter () =
  (* 1 KB with 64 B blocks has 16 lines: 32 ways is infeasible and must be
     skipped deterministically, not crash the sweep *)
  let s = Space.make ~sizes:[ 1024 ] ~blocks:[ 64 ] ~assocs:[ 1; 32 ] () in
  let c = Space.cardinality s in
  check_int "combos" 2 c.Space.combos;
  check_int "feasible" 1 c.Space.feasible;
  check_int "skipped" 1 c.Space.skipped;
  match Space.geometries s with
  | [ g ] -> check_int "survivor is the direct-mapped point" 1 g.C.assoc
  | gs -> Alcotest.failf "expected 1 geometry, got %d" (List.length gs)

let test_space_validation () =
  let invalid what mk =
    match mk () with
    | _ -> Alcotest.failf "%s accepted" what
    | exception Pf_util.Sim_error.Error e ->
        check_bool (what ^ ": Invalid_config") true
          (e.Pf_util.Sim_error.kind = Pf_util.Sim_error.Invalid_config)
  in
  invalid "empty sizes axis" (fun () -> Space.make ~sizes:[] ());
  invalid "non-power-of-two size" (fun () -> Space.make ~sizes:[ 3000 ] ());
  invalid "non-power-of-two assoc" (fun () ->
      Space.make ~sizes:[ 1024 ] ~assocs:[ 3 ] ());
  invalid "non-positive dict budget" (fun () ->
      Space.make ~sizes:[ 1024 ] ~dict_budgets:[ Some 0 ] ());
  invalid "fully infeasible space" (fun () ->
      Space.make ~sizes:[ 64 ] ~blocks:[ 64 ] ~assocs:[ 2 ] ())

let test_space_parsing () =
  check_bool "smoke by name" true (Space.of_string "smoke" = Ok Space.smoke);
  check_bool "full by name" true (Space.of_string "full" = Ok Space.full);
  (match Space.of_string "sizes=1k,2k;assocs=2;dicts=none,96" with
  | Error e -> Alcotest.failf "custom spec rejected: %s" e
  | Ok s ->
      check_bool "sizes parsed with k suffix" true
        (s.Space.sizes = [ 1024; 2048 ]);
      check_bool "blocks default" true (s.Space.blocks = [ 32 ]);
      check_bool "assocs parsed" true (s.Space.assocs = [ 2 ]);
      check_bool "dicts parsed, none first" true
        (s.Space.dict_budgets = [ None; Some 96 ]));
  check_bool "unknown key rejected" true
    (Result.is_error (Space.of_string "sizes=1k;bogus=3"));
  check_bool "garbage rejected" true (Result.is_error (Space.of_string "no"));
  check_bool "degenerate spec rejected" true
    (Result.is_error (Space.of_string "sizes=3000"))

let test_space_labels () =
  check_bool "16K label" true (Space.label Space.cache_16k = "16K/32B/32w");
  check_bool "paper point arm16" true
    (Space.paper_point ~arm:true Space.cache_16k = Some "ARM16");
  check_bool "paper point fits8" true
    (Space.paper_point ~arm:false Space.cache_8k = Some "FITS8");
  check_bool "non-paper geometry unannotated" true
    (Space.paper_point ~arm:true
       (C.config ~size_bytes:4096 ~assoc:8 ())
    = None)

(* ---- Pareto ------------------------------------------------------------ *)

let obj ?(energy = 1.0) ?(ipc = 1.0) ?(miss = 1.0) ?(area = 1.0) () =
  { Pareto.energy; ipc; miss_rate_pm = miss; area }

let test_pareto_units () =
  let a = obj ~energy:1.0 () in
  let worse = obj ~energy:2.0 () in
  let trade = obj ~energy:0.5 ~ipc:0.5 () in
  check_bool "dominates on one strict axis" true (Pareto.dominates a worse);
  check_bool "no reverse domination" false (Pareto.dominates worse a);
  check_bool "trade-off points incomparable" false (Pareto.dominates a trade);
  check_bool "identical points never dominate" false (Pareto.dominates a a);
  let f =
    Pareto.frontier [ ("w", worse); ("a", a); ("t", trade); ("a2", a) ]
  in
  check_int "dominated count" 1 f.Pareto.dominated;
  check_int "total" 4 f.Pareto.total;
  check_bool "input order kept, exact ties both kept" true
    (List.map fst f.Pareto.frontier = [ "a"; "t"; "a2" ])

let test_pareto_higher_ipc_wins () =
  let slow = obj ~ipc:0.5 () in
  let fast = obj ~ipc:0.9 () in
  check_bool "IPC is maximized" true (Pareto.dominates fast slow);
  let f = Pareto.frontier [ ("slow", slow); ("fast", fast) ] in
  check_bool "only the fast point survives" true
    (List.map fst f.Pareto.frontier = [ "fast" ])

(* ---- analytic power scaling -------------------------------------------- *)

let test_params_calibration () =
  let params_at cfg =
    Pf_power.Account.Params.for_geometry (Pf_power.Geometry.of_config cfg)
  in
  check_bool "16K paper point sees the calibrated defaults" true
    (params_at Space.cache_16k = Pf_power.Account.Params.default);
  check_bool "8K paper point sees the calibrated defaults" true
    (params_at Space.cache_8k = Pf_power.Account.Params.default);
  (* halving the probed ways halves the per-access energy *)
  let p16w = params_at (C.config ~size_bytes:(16 * 1024) ~assoc:16 ()) in
  check_exact "16-way k_access" 17.0 p16w.Pf_power.Account.Params.k_access;
  (* halving the block halves the read width the same way *)
  let pb16 =
    params_at (C.config ~size_bytes:(16 * 1024) ~block_bytes:16 ())
  in
  check_exact "16B-block k_access" 17.0 pb16.Pf_power.Account.Params.k_access;
  (* other coefficients are per-bit / per-gate and must not move *)
  check_exact "k_output untouched" 0.30
    p16w.Pf_power.Account.Params.k_output;
  check_exact "k_internal untouched" 3.4e-4
    p16w.Pf_power.Account.Params.k_internal_per_gate;
  (* index width is exposed for the address path *)
  let g = Pf_power.Geometry.of_config Space.cache_16k in
  check_int "index bits of 16 sets" 4 g.Pf_power.Geometry.index_bits

(* ---- explore: paper points reproduce the harness exactly ---------------- *)

let bench name = Pf_mibench.Registry.find_exn name

let check_point what (pc : E.per_config) (p : Explore.point) =
  let m = p.Explore.metrics in
  check_int (what ^ " instructions") pc.E.instructions m.Explore.instructions;
  check_int (what ^ " cycles") pc.E.cycles m.Explore.cycles;
  check_exact (what ^ " ipc") pc.E.ipc m.Explore.ipc;
  check_int (what ^ " fetch accesses") pc.E.fetch_accesses
    m.Explore.fetch_accesses;
  check_int (what ^ " cache misses") pc.E.cache_misses m.Explore.cache_misses;
  check_exact (what ^ " miss rate") pc.E.miss_rate_pm m.Explore.miss_rate_pm;
  check_exact (what ^ " dcache rate") pc.E.dcache_miss_rate_pm
    m.Explore.dcache_miss_rate_pm;
  let pe = pc.E.power and pm = m.Explore.power in
  check_exact (what ^ " switching") pe.Pf_power.Account.switching
    pm.Pf_power.Account.switching;
  check_exact (what ^ " internal") pe.Pf_power.Account.internal
    pm.Pf_power.Account.internal;
  check_exact (what ^ " leakage") pe.Pf_power.Account.leakage
    pm.Pf_power.Account.leakage;
  check_exact (what ^ " total") pe.Pf_power.Account.total
    pm.Pf_power.Account.total;
  check_exact (what ^ " peak") pe.Pf_power.Account.peak_power
    pm.Pf_power.Account.peak_power;
  check_int (what ^ " power cycles") pe.Pf_power.Account.cycles
    pm.Pf_power.Account.cycles

let test_paper_points_exact () =
  let b = bench "crc32" in
  let expected = E.run_benchmark b in
  let t = Explore.run ~jobs:1 ~benchmarks:[ b ] Space.smoke in
  check_int "completed" 1 t.Explore.completed;
  match Explore.completed_runs t with
  | [ br ] ->
      check_bool "outputs consistent" true br.Explore.outputs_consistent;
      let find variant geometry =
        List.find
          (fun (p : Explore.point) ->
            p.Explore.variant = variant && p.Explore.geometry = geometry)
          br.Explore.points
      in
      check_point "arm16" expected.E.arm16 (find Explore.Arm Space.cache_16k);
      check_point "arm8" expected.E.arm8 (find Explore.Arm Space.cache_8k);
      check_point "fits16" expected.E.fits16
        (find (Explore.Fits None) Space.cache_16k);
      check_point "fits8" expected.E.fits8
        (find (Explore.Fits None) Space.cache_8k)
  | rs -> Alcotest.failf "expected 1 completed run, got %d" (List.length rs)

(* ---- explore: jobs independence ---------------------------------------- *)

let strip_elapsed (t : Explore.t) =
  List.map (fun r -> { r with Explore.elapsed_s = 0.0 }) t.Explore.rows

let test_jobs_independent () =
  let benchmarks = [ bench "crc32"; bench "sha" ] in
  let t1 = Explore.run ~jobs:1 ~benchmarks Space.smoke in
  let t4 = Explore.run ~jobs:4 ~benchmarks Space.smoke in
  check_bool "rows identical for jobs 1 vs 4" true
    (strip_elapsed t1 = strip_elapsed t4);
  Alcotest.(check string)
    "CSV emission (points + frontiers) identical" (Explore.to_csv t1)
    (Explore.to_csv t4);
  check_bool "aggregate frontier identical" true
    (Explore.frontier_of (Explore.aggregate t1)
    = Explore.frontier_of (Explore.aggregate t4))

(* ---- explore: dict-budget variants ------------------------------------- *)

let test_dict_budget_variant () =
  let space =
    Space.make
      ~sizes:[ 16 * 1024 ]
      ~dict_budgets:[ None; Some 24 ]
      ()
  in
  let t = Explore.run ~jobs:1 ~benchmarks:[ bench "crc32" ] space in
  match Explore.completed_runs t with
  | [ br ] ->
      check_int "three variants x one geometry" 3
        (List.length br.Explore.points);
      check_bool "outputs consistent under a capped dictionary" true
        br.Explore.outputs_consistent;
      let fits_free =
        List.find
          (fun p -> p.Explore.variant = Explore.Fits None)
          br.Explore.points
      and fits_cap =
        List.find
          (fun p -> p.Explore.variant = Explore.Fits (Some 24))
          br.Explore.points
      in
      check_int "same source instruction count"
        fits_free.Explore.metrics.Explore.instructions
        fits_cap.Explore.metrics.Explore.instructions;
      check_bool "capping the dictionary cannot reduce cycles" true
        (fits_cap.Explore.metrics.Explore.cycles
        >= fits_free.Explore.metrics.Explore.cycles)
  | rs -> Alcotest.failf "expected 1 completed run, got %d" (List.length rs)

(* ---- replay at G == direct execution at G (QCheck over geometries) ------ *)

let replay_setup =
  lazy
    (let b = bench "crc32" in
     let p = b.Pf_mibench.Registry.program ~scale:1 in
     let image =
       Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
     in
     let trace = Pf_cpu.Trace.create ~isize:4 () in
     let r =
       Pf_cpu.Arm_run.run ~cache_cfg:Space.recording_point ~trace image
     in
     (image, trace, r))

let geometry_gen =
  QCheck.Gen.(
    int_range 9 14 >>= fun size_log ->
    int_range 2 (min 6 size_log) >>= fun block_log ->
    int_range 0 (min 5 (size_log - block_log)) >>= fun assoc_log ->
    return
      (C.config
         ~size_bytes:(1 lsl size_log)
         ~block_bytes:(1 lsl block_log)
         ~assoc:(1 lsl assoc_log) ()))

let geometry_arb =
  QCheck.make ~print:(fun g -> Space.label g) geometry_gen

let prop_replay_equals_direct =
  QCheck.Test.make
    ~name:
      "replaying a recorded trace at geometry G is bit-identical to direct \
       execution at G (cycles, toggles, miss classes, power)"
    ~count:12 geometry_arb
    (fun g ->
      let image, trace, recorded = Lazy.force replay_setup in
      let params =
        Pf_power.Account.Params.for_geometry (Pf_power.Geometry.of_config g)
      in
      let direct_cache = C.create ~classify:true g in
      let direct =
        Pf_cpu.Arm_run.run ~cache:direct_cache ~cache_cfg:g
          ~power_params:params image
      in
      let replay_cache = C.create ~classify:true g in
      let replayed =
        Pf_cpu.Trace.replay ~power_params:params ~cache:replay_cache
          ~cache_cfg:g
          ~fetch_data:(fun a -> Pf_arm.Image.word_at image a)
          trace
      in
      direct.Pf_cpu.Arm_run.instructions
      = replayed.Pf_cpu.Trace.instructions
      && direct.Pf_cpu.Arm_run.cycles = replayed.Pf_cpu.Trace.cycles
      && direct.Pf_cpu.Arm_run.fetch_accesses
         = replayed.Pf_cpu.Trace.fetch_accesses
      && direct.Pf_cpu.Arm_run.cache_accesses
         = replayed.Pf_cpu.Trace.cache_accesses
      && direct.Pf_cpu.Arm_run.cache_misses
         = replayed.Pf_cpu.Trace.cache_misses
      && direct.Pf_cpu.Arm_run.power = replayed.Pf_cpu.Trace.power
      && C.output_toggles direct_cache = C.output_toggles replay_cache
      && C.addr_toggles direct_cache = C.addr_toggles replay_cache
      && C.refill_words direct_cache = C.refill_words replay_cache
      && C.stats_compulsory direct_cache = C.stats_compulsory replay_cache
      && C.stats_capacity direct_cache = C.stats_capacity replay_cache
      && C.stats_conflict direct_cache = C.stats_conflict replay_cache
      && direct.Pf_cpu.Arm_run.output = recorded.Pf_cpu.Arm_run.output)

(* ---- single-pass sweep == per-geometry replay --------------------------- *)

let bits = Int64.bits_of_float

let sweep_matches_replay gs =
  let image, trace, _ = Lazy.force replay_setup in
  let fetch_data a = Pf_arm.Image.word_at image a in
  let params_of g =
    Pf_power.Account.Params.for_geometry (Pf_power.Geometry.of_config g)
  in
  let sw =
    Pf_dse.Sweep.run ~classify:true ~params_of ~geometries:gs ~fetch_data
      trace
  in
  let classes = Option.get sw.Pf_dse.Sweep.classes in
  List.for_all
    (fun (i, g) ->
      let cache = C.create ~classify:true g in
      let st =
        Pf_cpu.Trace.replay ~power_params:(params_of g) ~cache ~cache_cfg:g
          ~fetch_data trace
      in
      let sv = sw.Pf_dse.Sweep.stats.(i) in
      let cl = classes.(i) in
      let p = params_of g in
      (* the trace stats record, bit-for-bit (floats compared as bits) *)
      st.Pf_cpu.Trace.instructions = sv.Pf_cpu.Trace.instructions
      && st.Pf_cpu.Trace.cycles = sv.Pf_cpu.Trace.cycles
      && st.Pf_cpu.Trace.fetch_accesses = sv.Pf_cpu.Trace.fetch_accesses
      && st.Pf_cpu.Trace.cache_accesses = sv.Pf_cpu.Trace.cache_accesses
      && st.Pf_cpu.Trace.cache_misses = sv.Pf_cpu.Trace.cache_misses
      && bits st.Pf_cpu.Trace.miss_rate_per_million
         = bits sv.Pf_cpu.Trace.miss_rate_per_million
      && bits st.Pf_cpu.Trace.dcache_miss_rate_pm
         = bits sv.Pf_cpu.Trace.dcache_miss_rate_pm
      && bits st.Pf_cpu.Trace.power.Pf_power.Account.switching
         = bits sv.Pf_cpu.Trace.power.Pf_power.Account.switching
      && bits st.Pf_cpu.Trace.power.Pf_power.Account.internal
         = bits sv.Pf_cpu.Trace.power.Pf_power.Account.internal
      && bits st.Pf_cpu.Trace.power.Pf_power.Account.leakage
         = bits sv.Pf_cpu.Trace.power.Pf_power.Account.leakage
      && bits st.Pf_cpu.Trace.power.Pf_power.Account.total
         = bits sv.Pf_cpu.Trace.power.Pf_power.Account.total
      && bits st.Pf_cpu.Trace.power.Pf_power.Account.peak_power
         = bits sv.Pf_cpu.Trace.power.Pf_power.Account.peak_power
      (* toggle accounting: the sweep's switching energy must equal the
         closed form evaluated on the replay cache's own toggle/refill
         counters — this pins the sweep's per-profile index-toggle and
         shared output-toggle sums to the cache model's, bit-for-bit *)
      && bits sv.Pf_cpu.Trace.power.Pf_power.Account.switching
         = bits
             (Pf_power.Account.switching_energy p
                ~accesses:(C.stats_accesses cache)
                ~toggles:(C.output_toggles cache + C.addr_toggles cache)
                ~refill_words:(C.refill_words cache))
      (* miss classification against the shadow cache *)
      && C.stats_compulsory cache = cl.Pf_dse.Sweep.compulsory
      && C.stats_capacity cache = cl.Pf_dse.Sweep.capacity
      && C.stats_conflict cache = cl.Pf_dse.Sweep.conflict)
    (List.mapi (fun i g -> (i, g)) gs)

let prop_sweep_equals_replay =
  QCheck.Test.make
    ~name:
      "single-pass all-geometry sweep is bit-identical to per-geometry \
       replay (counts, miss classes, toggles, energy, peak)"
    ~count:8
    (QCheck.make
       ~print:(fun gs -> String.concat " " (List.map Space.label gs))
       QCheck.Gen.(list_size (int_range 3 8) geometry_gen))
    (fun gs ->
      (* paper points always ride along; duplicates are legal lanes *)
      sweep_matches_replay (Space.cache_16k :: Space.cache_8k :: gs))

let test_space_engines () =
  let dense = Space.cardinality Space.dense in
  check_bool "dense grid meets the >= 1000 geometry bar" true
    (dense.Space.feasible >= 1000);
  let geoms = Space.geometries Space.dense in
  check_bool "dense contains the 16K paper point" true
    (List.mem Space.cache_16k geoms);
  check_bool "dense contains the 8K paper point" true
    (List.mem Space.cache_8k geoms);
  check_bool "dense parses by name" true
    (Space.of_string "dense" = Ok Space.dense);
  check_bool "dense grid picks the sweep engine" true
    (Space.choose_engine Space.dense = Space.Sweep);
  check_bool "smoke grid stays on replay" true
    (Space.choose_engine Space.smoke = Space.Replay);
  check_bool "full grid stays on replay" true
    (Space.choose_engine Space.full = Space.Replay);
  let co = Space.cost ~benchmarks:21 Space.dense in
  check_int "one sweep pass per recorded trace" (21 * 2) co.Space.sweep_passes;
  check_bool "cost reports the auto engine" true (co.Space.engine = Space.Sweep);
  check_bool "profiles well under geometries" true
    (2 * co.Space.profiles <= dense.Space.feasible);
  check_bool "engine round-trips through labels" true
    (Space.engine_of_string (Space.engine_label Space.Sweep) = Ok Space.Sweep
    && Space.engine_of_string (Space.engine_label Space.Replay)
       = Ok Space.Replay
    && Result.is_error (Space.engine_of_string "bogus"))

let tests =
  [
    Alcotest.test_case "named grids and the cost contract" `Quick
      test_space_grids;
    Alcotest.test_case "engine choice and the dense grid" `Quick
      test_space_engines;
    Alcotest.test_case "infeasible corners are skipped, counted" `Quick
      test_space_feasibility_filter;
    Alcotest.test_case "space validation" `Quick test_space_validation;
    Alcotest.test_case "grid parsing" `Quick test_space_parsing;
    Alcotest.test_case "labels and paper-point annotation" `Quick
      test_space_labels;
    Alcotest.test_case "pareto dominance and frontier" `Quick
      test_pareto_units;
    Alcotest.test_case "pareto maximizes IPC" `Quick
      test_pareto_higher_ipc_wins;
    Alcotest.test_case "analytic params calibrated at the paper points"
      `Quick test_params_calibration;
    Alcotest.test_case "paper grid points reproduce the harness exactly"
      `Slow test_paper_points_exact;
    Alcotest.test_case "frontiers independent of --jobs" `Slow
      test_jobs_independent;
    Alcotest.test_case "dict-budget FITS variants" `Slow
      test_dict_budget_variant;
    QCheck_alcotest.to_alcotest prop_replay_equals_direct;
    QCheck_alcotest.to_alcotest prop_sweep_equals_replay;
  ]
