(* Architectural-semantics tests for the interpreter: flags, shifter,
   conditional execution, memory widths, and the 16-bit (isize=2) mode the
   FITS runner depends on. *)

module A = Pf_arm.Insn
module E = Pf_arm.Exec

(* A tiny sandbox state: assemble the given instructions into an image. *)
let state_of insns =
  let words = Array.of_list (List.map Pf_arm.Encode.encode insns) in
  let image = Pf_arm.Image.make ~entry:0x8000 words in
  E.create image

let exec_one st ~pc insn =
  let o = E.outcome () in
  E.execute st ~pc insn o;
  o

let dp ?(cond = A.AL) ?(s = false) op rd rn op2 =
  A.Dp { cond; op; s; rd; rn; op2 }

let imm v = Option.get (A.encode_imm_operand v)

let nop = dp A.MOV 0 0 (A.Reg 0)

let fresh () = state_of [ nop ]

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_add_flags () =
  let st = fresh () in
  st.E.regs.(1) <- 0xFFFFFFFF;
  st.E.regs.(2) <- 1;
  ignore (exec_one st ~pc:0x8000 (dp ~s:true A.ADD 0 1 (A.Reg 2)));
  check_int "wraps" 0 st.E.regs.(0);
  check_bool "Z set" true st.E.zf;
  check_bool "C set (carry out)" true st.E.cf;
  check_bool "V clear" false st.E.vf;
  (* signed overflow: MAX_INT + 1 *)
  st.E.regs.(1) <- 0x7FFFFFFF;
  st.E.regs.(2) <- 1;
  ignore (exec_one st ~pc:0x8000 (dp ~s:true A.ADD 0 1 (A.Reg 2)));
  check_bool "V set" true st.E.vf;
  check_bool "N set" true st.E.nf;
  check_bool "C clear" false st.E.cf

let test_sub_flags () =
  let st = fresh () in
  st.E.regs.(1) <- 5;
  ignore (exec_one st ~pc:0x8000 (dp A.CMP 0 1 (imm 5)));
  check_bool "Z on equal" true st.E.zf;
  check_bool "C = no borrow" true st.E.cf;
  ignore (exec_one st ~pc:0x8000 (dp A.CMP 0 1 (imm 6)));
  check_bool "borrow clears C" false st.E.cf;
  check_bool "N set" true st.E.nf

let test_conditions () =
  let st = fresh () in
  (* after cmp 1, 2 (1 < 2 signed and unsigned) *)
  st.E.regs.(1) <- 1;
  ignore (exec_one st ~pc:0x8000 (dp A.CMP 0 1 (imm 2)));
  let passes cond =
    let o = exec_one st ~pc:0x8000 (dp ~cond A.MOV 3 0 (imm 1)) in
    o.E.executed
  in
  check_bool "LT passes" true (passes A.LT);
  check_bool "GE fails" false (passes A.GE);
  check_bool "CC passes (unsigned <)" true (passes A.CC);
  check_bool "HI fails" false (passes A.HI);
  check_bool "NE passes" true (passes A.NE);
  check_bool "EQ fails" false (passes A.EQ);
  check_bool "AL passes" true (passes A.AL)

let test_shifter_semantics () =
  let st = fresh () in
  st.E.regs.(1) <- 0x80000001;
  let run op2 =
    ignore (exec_one st ~pc:0x8000 (dp A.MOV 0 0 op2));
    st.E.regs.(0)
  in
  check_int "lsl 1" 2 (run (A.Reg_shift (1, A.LSL, 1)));
  check_int "lsr 1" 0x40000000 (run (A.Reg_shift (1, A.LSR, 1)));
  check_int "asr 1" 0xC0000000 (run (A.Reg_shift (1, A.ASR, 1)));
  check_int "ror 1" 0xC0000000 (run (A.Reg_shift (1, A.ROR, 1)));
  (* shift by register: amount >= 32 saturates *)
  st.E.regs.(2) <- 33;
  check_int "lsl by 33" 0 (run (A.Reg_shift_reg (1, A.LSL, 2)));
  check_int "asr by 33" 0xFFFFFFFF (run (A.Reg_shift_reg (1, A.ASR, 2)));
  st.E.regs.(2) <- 0x100;
  (* only the low byte of the amount register counts *)
  check_int "amount masked to low byte" 0x80000001
    (run (A.Reg_shift_reg (1, A.LSL, 2)))

let test_mul () =
  let st = fresh () in
  st.E.regs.(1) <- 100000;
  st.E.regs.(2) <- 100000;
  ignore
    (exec_one st ~pc:0x8000
       (A.Mul { cond = A.AL; s = false; rd = 0; rm = 1; rs = 2; acc = None }));
  check_int "mul wraps to u32" (Pf_util.Bits.u32 10_000_000_000)
    st.E.regs.(0);
  st.E.regs.(3) <- 7;
  ignore
    (exec_one st ~pc:0x8000
       (A.Mul { cond = A.AL; s = false; rd = 0; rm = 1; rs = 2; acc = Some 3 }));
  check_int "mla adds" (Pf_util.Bits.u32 10_000_000_007) st.E.regs.(0)

let test_memory_widths () =
  let st = fresh () in
  let base = 0x20_0000 in
  st.E.regs.(1) <- base;
  st.E.regs.(2) <- 0x8081_8283;
  let mem ?(signed = false) ~load width rd ofs =
    A.Mem { cond = A.AL; load; width; signed; rd; rn = 1;
            offset = A.Ofs_imm ofs; writeback = false }
  in
  ignore (exec_one st ~pc:0x8000 (mem ~load:false A.Word 2 0));
  ignore (exec_one st ~pc:0x8000 (mem ~load:true A.Word 3 0));
  check_int "word round-trip" 0x8081_8283 st.E.regs.(3);
  ignore (exec_one st ~pc:0x8000 (mem ~load:true A.Byte 3 0));
  check_int "little-endian byte" 0x83 st.E.regs.(3);
  ignore (exec_one st ~pc:0x8000 (mem ~load:true ~signed:true A.Byte 3 0));
  check_int "signed byte" 0xFFFFFF83 st.E.regs.(3);
  ignore (exec_one st ~pc:0x8000 (mem ~load:true A.Half 3 2));
  check_int "high half" 0x8081 st.E.regs.(3);
  ignore (exec_one st ~pc:0x8000 (mem ~load:true ~signed:true A.Half 3 2));
  check_int "signed half" 0xFFFF8081 st.E.regs.(3)

let test_unaligned_faults () =
  let st = fresh () in
  st.E.regs.(1) <- 0x20_0001;
  check_bool "unaligned word load faults" true
    (try
       ignore
         (exec_one st ~pc:0x8000
            (A.Mem { cond = A.AL; load = true; width = A.Word; signed = false;
                     rd = 0; rn = 1; offset = A.Ofs_imm 0; writeback = false }));
       false
     with
       Pf_util.Sim_error.Error { kind = Pf_util.Sim_error.Memory_fault; _ } ->
         true)

let test_push_pop () =
  let st = fresh () in
  let sp0 = st.E.regs.(A.sp) in
  st.E.regs.(4) <- 44;
  st.E.regs.(5) <- 55;
  let o = exec_one st ~pc:0x8000 (A.Push { cond = A.AL; regs = [ 4; 5 ] }) in
  check_int "sp dropped" (sp0 - 8) st.E.regs.(A.sp);
  check_int "two words moved" 2 o.E.mem_words;
  st.E.regs.(4) <- 0;
  st.E.regs.(5) <- 0;
  ignore (exec_one st ~pc:0x8000 (A.Pop { cond = A.AL; regs = [ 4; 5 ] }));
  check_int "sp restored" sp0 st.E.regs.(A.sp);
  check_int "r4 restored" 44 st.E.regs.(4);
  check_int "r5 restored" 55 st.E.regs.(5)

let test_pop_pc_branches () =
  let st = fresh () in
  st.E.regs.(0) <- 0x9000;
  ignore (exec_one st ~pc:0x8000 (A.Push { cond = A.AL; regs = [ 0 ] }));
  let o = exec_one st ~pc:0x8000 (A.Pop { cond = A.AL; regs = [ A.pc ] }) in
  check_bool "taken" true o.E.branch_taken;
  check_int "target" 0x9000 o.E.next_pc

let test_branch_semantics () =
  let st = fresh () in
  let o =
    exec_one st ~pc:0x8000 (A.B { cond = A.AL; link = true; offset = 0x100 })
  in
  check_int "target is pc+8+offset" (0x8000 + 8 + 0x100) o.E.next_pc;
  check_int "lr is return address" 0x8004 st.E.regs.(A.lr);
  (* 16-bit mode: FITS semantics *)
  let o2 = E.outcome () in
  E.execute ~isize:2 st ~pc:0x8000
    (A.B { cond = A.AL; link = true; offset = 0x100 })
    o2;
  check_int "fits target is pc+4+offset" (0x8000 + 4 + 0x100) o2.E.next_pc;
  check_int "fits lr is pc+2" 0x8002 st.E.regs.(A.lr)

let test_pc_reads_plus8 () =
  let st = fresh () in
  ignore (exec_one st ~pc:0x8000 (dp A.MOV 0 0 (A.Reg A.pc)));
  check_int "reading pc yields pc+8" 0x8008 st.E.regs.(0)

let test_dp_value_entry_point () =
  let st = fresh () in
  st.E.regs.(1) <- 10;
  let o = E.outcome () in
  E.execute_dp_value ~isize:2 st ~pc:0x8000 ~cond:A.AL ~op:A.ADD ~s:false
    ~rd:0 ~rn:1 ~value:0x12345678 o;
  check_int "dict operand applied" (0x12345678 + 10) st.E.regs.(0);
  check_int "falls through by 2" 0x8002 o.E.next_pc;
  (* flags with s *)
  E.execute_dp_value ~isize:2 st ~pc:0x8000 ~cond:A.AL ~op:A.SUB ~s:true
    ~rd:0 ~rn:1 ~value:10 o;
  check_bool "Z from dict sub" true st.E.zf

let test_swi_output () =
  let st = fresh () in
  st.E.regs.(0) <- 0xFFFFFFFF;
  ignore (exec_one st ~pc:0x8000 (A.Swi { cond = A.AL; number = 1 }));
  st.E.regs.(0) <- Char.code 'x';
  ignore (exec_one st ~pc:0x8000 (A.Swi { cond = A.AL; number = 2 }));
  Alcotest.(check string) "print int then char" "-1\nx" (E.output st);
  ignore (exec_one st ~pc:0x8000 (A.Swi { cond = A.AL; number = 0 }));
  check_bool "swi 0 halts" true st.E.halted

let test_scratch_register () =
  let st = fresh () in
  ignore (exec_one st ~pc:0x8000 (dp A.MOV 16 0 (imm 77)));
  check_int "r16 exists" 77 st.E.regs.(16);
  ignore (exec_one st ~pc:0x8000 (dp A.ADD 0 16 (A.Reg 16)));
  check_int "r16 readable" 154 st.E.regs.(0)

let test_run_halts_on_sentinel () =
  (* mov r0, #7; swi 1; bx lr -> prints then returns to the sentinel *)
  let st =
    state_of
      [
        dp A.MOV 0 0 (imm 7);
        A.Swi { cond = A.AL; number = 1 };
        A.Bx { cond = A.AL; rm = A.lr };
      ]
  in
  E.run st ~on_step:(fun _ ~pc:_ _ _ -> ());
  Alcotest.(check string) "ran to sentinel" "7\n" (E.output st);
  check_int "three instructions" 3 st.E.steps

let test_step_budget () =
  (* b . -> infinite loop; the budget must trip *)
  let st = state_of [ A.B { cond = A.AL; link = false; offset = -8 } ] in
  check_bool "budget exhausts" true
    (try
       E.run ~max_steps:1000 st ~on_step:(fun _ ~pc:_ _ _ -> ());
       false
     with
       Pf_util.Sim_error.Error
         { kind = Pf_util.Sim_error.Watchdog_timeout; _ } ->
         true)

let tests =
  [
    Alcotest.test_case "add flags" `Quick test_add_flags;
    Alcotest.test_case "sub/cmp flags" `Quick test_sub_flags;
    Alcotest.test_case "all condition codes" `Quick test_conditions;
    Alcotest.test_case "barrel shifter" `Quick test_shifter_semantics;
    Alcotest.test_case "mul/mla" `Quick test_mul;
    Alcotest.test_case "memory widths" `Quick test_memory_widths;
    Alcotest.test_case "unaligned access faults" `Quick test_unaligned_faults;
    Alcotest.test_case "push/pop" `Quick test_push_pop;
    Alcotest.test_case "pop into pc" `Quick test_pop_pc_branches;
    Alcotest.test_case "branch and link, both isizes" `Quick
      test_branch_semantics;
    Alcotest.test_case "pc reads as pc+8" `Quick test_pc_reads_plus8;
    Alcotest.test_case "dictionary-operand entry point" `Quick
      test_dp_value_entry_point;
    Alcotest.test_case "swi output and halt" `Quick test_swi_output;
    Alcotest.test_case "over-provisioned r16" `Quick test_scratch_register;
    Alcotest.test_case "run halts on sentinel" `Quick
      test_run_halts_on_sentinel;
    Alcotest.test_case "step budget" `Quick test_step_budget;
  ]
