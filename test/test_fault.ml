(* Fault-injection subsystem tests: seeded determinism, parity coverage,
   rate-0 transparency of the injector, campaign classification, and the
   crash-proof harness isolation. *)

module I = Pf_fault.Injector
module Camp = Pf_fault.Campaign
module T = Pf_fits.Translate
module M = Pf_fits.Mapping
module Rng = Pf_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* crc32 is the acceptance benchmark: small, fast, exercises dictionary
   immediates and loops.  Built once for the whole suite. *)
let setup =
  lazy
    (let b = Pf_mibench.Registry.find "crc32" in
     let p = b.Pf_mibench.Registry.program ~scale:1 in
     let image =
       Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
     in
     let dyn_counts, reference = Pf_fits.Synthesis.dyn_counts_of_run image in
     let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
     let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
     (image, tr, reference))

(* ---- injector ---- *)

let test_injector_determinism () =
  let _, tr, _ = Lazy.force setup in
  let corrupt seed =
    I.corrupt_decoder (Rng.create seed) ~rate:0.01 ~parity:false tr
  in
  let tr1, t1 = corrupt 42 in
  let tr2, t2 = corrupt 42 in
  check_bool "flips planted" true (t1.I.flips > 0);
  check_bool "same seed, same trial stats" true (t1 = t2);
  check_bool "same seed, same corrupted program" true
    (tr1.T.insns = tr2.T.insns);
  let tr3, t3 = corrupt 43 in
  check_bool "different seed, different corruption" true
    (t1 <> t3 || tr1.T.insns <> tr3.T.insns)

let test_injector_rate_zero () =
  let _, tr, _ = Lazy.force setup in
  let tr0, t0 = I.corrupt_decoder (Rng.create 7) ~rate:0.0 ~parity:false tr in
  check_bool "no flips at rate 0" true (t0 = I.no_trial);
  check_bool "program untouched" true (tr0.T.insns = tr.T.insns);
  let r = Pf_fits.Run.run tr in
  let r0 = Pf_fits.Run.run tr0 in
  check_bool "bit-identical output" true
    (r.Pf_fits.Run.output = r0.Pf_fits.Run.output);
  check_int "bit-identical cycles" r.Pf_fits.Run.cycles r0.Pf_fits.Run.cycles

let test_parity_coverage () =
  let _, tr, _ = Lazy.force setup in
  let tr', t = I.corrupt_decoder (Rng.create 3) ~rate:0.05 ~parity:true tr in
  check_bool "some entries corrupted" true (t.I.entries_corrupted > 0);
  check_bool "parity flags a subset" true
    (t.I.parity_detectable > 0
    && t.I.parity_detectable <= t.I.entries_corrupted);
  (* parity poisons exactly the odd-flip entries to a trapping M_undef *)
  let poisoned =
    Array.fold_left
      (fun n (fi : T.finsn) ->
        match fi.T.micro with
        | M.M_undef why when contains ~sub:"parity" why -> n + 1
        | _ -> n)
      0 tr'.T.insns
  in
  check_int "poisoned entries = parity-detectable" t.I.parity_detectable
    poisoned

let test_decoder_roundtrip () =
  (* every entry the translator emits must either decode back to an
     equivalent micro-op from its stored control word, or be flagged
     lossy — and for crc32 the faithful fraction should dominate *)
  let _, tr, _ = Lazy.force setup in
  let spec = tr.T.spec in
  let total = Array.length tr.T.insns in
  let faithful =
    Array.fold_left
      (fun n fi -> if Pf_fits.Decode.faithful spec fi then n + 1 else n)
      0 tr.T.insns
  in
  check_bool "control words mostly faithful" true (2 * faithful > total)

let test_regs_hook () =
  let image, _, _ = Lazy.force setup in
  let hook, summary = I.regs_hook (Rng.create 11) ~rate:1.0 in
  let st = Pf_arm.Exec.create image in
  let before = Array.copy st.Pf_arm.Exec.regs in
  for s = 1 to 8 do
    hook st ~steps:s
  done;
  check_int "rate 1 flips every step" 8 (summary ()).I.flips;
  check_bool "register state perturbed" true (st.Pf_arm.Exec.regs <> before)

(* ---- campaign ---- *)

let test_campaign_rate_zero () =
  let _, tr, reference = Lazy.force setup in
  let r =
    Camp.run ~trials:3 ~target:I.Decoder ~rate:0.0 ~seed:42 ~reference tr
  in
  check_int "all trials clean" 3 r.Camp.clean;
  check_int "no flips" 0 r.Camp.flips;
  check_int "nothing crashed" 0 r.Camp.crashed;
  check_int "nothing diverged" 0 r.Camp.divergent;
  check_bool "baseline matches golden output" true
    (r.Camp.baseline.Pf_fits.Run.output = reference)

let test_campaign_determinism () =
  let _, tr, reference = Lazy.force setup in
  let go () =
    Camp.run ~trials:5 ~target:I.Decoder ~rate:2e-3 ~seed:9 ~reference tr
  in
  let a = go () in
  let b = go () in
  check_int "same flips" a.Camp.flips b.Camp.flips;
  check_bool "same outcome breakdown" true
    ((a.Camp.clean, a.Camp.detected, a.Camp.silent, a.Camp.divergent,
      a.Camp.crashed)
    = (b.Camp.clean, b.Camp.detected, b.Camp.silent, b.Camp.divergent,
       b.Camp.crashed))

let test_campaign_accounts_all_trials () =
  let _, tr, reference = Lazy.force setup in
  List.iter
    (fun target ->
      let r =
        Camp.run ~trials:4 ~parity:true ~target ~rate:1e-3 ~seed:5 ~reference
          tr
      in
      check_int
        ("every trial classified (" ^ I.target_name target ^ ")")
        4
        (r.Camp.clean + r.Camp.detected + r.Camp.silent + r.Camp.divergent
       + r.Camp.crashed))
    [ I.Decoder; I.Dict; I.Icache; I.Regs ]

(* ---- structured watchdog ---- *)

let test_step_watchdog () =
  let _, tr, _ = Lazy.force setup in
  check_bool "step budget raises structured timeout" true
    (try
       ignore (Pf_fits.Run.run ~max_steps:10 tr);
       false
     with
    | Pf_util.Sim_error.Error
        { Pf_util.Sim_error.kind = Pf_util.Sim_error.Watchdog_timeout; _ } ->
        true)

(* ---- harness isolation ---- *)

let test_harness_isolation () =
  let crc = Pf_mibench.Registry.find "crc32" in
  let boom =
    {
      Pf_mibench.Registry.name = "boom";
      result_name = "boom";
      category = "test";
      program = (fun ~scale:_ -> failwith "synthetic benchmark failure");
      power_study = false;
      unroll = 1;
    }
  in
  let sweep = Pf_harness.Experiment.run_all ~benchmarks:[ crc; boom ] () in
  check_int "one of two completed" 1 sweep.Pf_harness.Experiment.completed;
  check_int "both accounted for" 2 sweep.Pf_harness.Experiment.total;
  check_int "survivors still produce results" 1
    (List.length (Pf_harness.Experiment.completed_results sweep));
  let banner = Pf_harness.Experiment.banner sweep in
  check_bool "banner reports completion count" true
    (contains ~sub:"1 of 2" banner);
  check_bool "banner names the failure" true (contains ~sub:"boom" banner);
  List.iter
    (fun (row : Pf_harness.Experiment.sweep_row) ->
      match (row.Pf_harness.Experiment.bench, row.Pf_harness.Experiment.outcome) with
      | "crc32", Ok _ -> ()
      | "crc32", Error e ->
          Alcotest.failf "crc32 should survive: %s"
            (Pf_util.Sim_error.to_string e)
      | "boom", Error _ -> ()
      | "boom", Ok _ -> Alcotest.fail "boom must be isolated as an error"
      | name, _ -> Alcotest.failf "unexpected row %s" name)
    sweep.Pf_harness.Experiment.rows

let tests =
  [
    Alcotest.test_case "injector: seeded determinism" `Quick
      test_injector_determinism;
    Alcotest.test_case "injector: rate 0 is transparent" `Quick
      test_injector_rate_zero;
    Alcotest.test_case "injector: parity coverage" `Quick
      test_parity_coverage;
    Alcotest.test_case "decoder: control words faithful" `Quick
      test_decoder_roundtrip;
    Alcotest.test_case "injector: register hook" `Quick test_regs_hook;
    Alcotest.test_case "campaign: rate 0 all clean" `Quick
      test_campaign_rate_zero;
    Alcotest.test_case "campaign: replayable from seed" `Quick
      test_campaign_determinism;
    Alcotest.test_case "campaign: all targets classify" `Quick
      test_campaign_accounts_all_trials;
    Alcotest.test_case "watchdog: structured step budget" `Quick
      test_step_watchdog;
    Alcotest.test_case "harness: failures isolated" `Quick
      test_harness_isolation;
  ]
