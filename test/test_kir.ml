(* KIR front-end tests: validator diagnostics, evaluator semantics, and the
   unrolling transform (which must be observationally invisible). *)

open Pf_kir
open Pf_kir.Build

let eval_out p = (Eval.run p).Eval.output

let main body = program [] [ func "main" [] body ]

let check_out name expected p =
  Alcotest.(check string) name expected (eval_out p)

(* ---- validator ---- *)

let expect_invalid name p =
  match Validate.check p with
  | Ok () -> Alcotest.failf "%s: expected a validation error" name
  | Error (e :: _) ->
      Alcotest.(check bool) name true (String.length e.Validate.what > 0)
  | Error [] -> Alcotest.fail "empty error list"

let test_validator_catches () =
  expect_invalid "missing main" (program [] [ func "f" [] [ ret0 ] ]);
  expect_invalid "main with params"
    (program [] [ func "main" [ "x" ] [ ret0 ] ]);
  expect_invalid "undeclared variable" (main [ print_int (v "nope") ]);
  expect_invalid "undeclared global" (main [ print_int (load32 (gaddr "g")) ]);
  expect_invalid "unknown function" (main [ do_ "ghost" [] ]);
  expect_invalid "arity mismatch"
    (program []
       [ func "f" [ "a" ] [ ret (v "a") ]; func "main" [] [ do_ "f" [] ] ]);
  expect_invalid "too many params"
    (program []
       [
         func "f" [ "a"; "b"; "c"; "d"; "e" ] [ ret0 ];
         func "main" [] [ ret0 ];
       ]);
  expect_invalid "break outside loop" (main [ break_ ]);
  expect_invalid "duplicate function"
    (program [] [ func "main" [] [ ret0 ]; func "main" [] [ ret0 ] ]);
  expect_invalid "duplicate global"
    (program
       [ garray "g" W32 1; garray "g" W8 1 ]
       [ func "main" [] [ ret0 ] ]);
  expect_invalid "oversized initializer"
    (program
       [ garray_init "g" W32 [| 1; 2; 3 |] |> fun g ->
         { g with Ast.length = 2 } ]
       [ func "main" [] [ ret0 ] ])

let test_validator_accumulates () =
  (* one pass reports every problem, not just the first: a duplicate
     global, a missing main, and a stray break all surface together *)
  let p =
    program
      [ garray "g" W32 1; garray "g" W8 1 ]
      [ func "f" [] [ break_ ] ]
  in
  match Validate.check p with
  | Ok () -> Alcotest.fail "expected validation errors"
  | Error errs ->
      Alcotest.(check bool) "accumulates multiple errors" true
        (List.length errs >= 2);
      List.iter
        (fun (e : Validate.error) ->
          Alcotest.(check bool) "each error is located" true
            (String.length e.Validate.where > 0
            && String.length e.Validate.what > 0))
        errs

let test_validator_accepts () =
  Alcotest.(check bool) "suite benchmarks validate" true
    (List.for_all
       (fun (b : Pf_mibench.Registry.benchmark) ->
         Validate.check (b.Pf_mibench.Registry.program ~scale:1) = Ok ())
       Pf_mibench.Registry.all)

(* ---- evaluator semantics ---- *)

let test_eval_wraparound () =
  check_out "mul wraps" "-727379968\n"
    (main [ print_int (i 1000000 *% i 1000000) ]);
  check_out "add wraps" "0\n"
    (main [ print_int (i 0xFFFFFFFF +% i 1) ])

let test_eval_division_by_zero () =
  check_out "div by zero is 0" "0\n0\n0\n0\n"
    (main
       [
         print_int (i 5 /% i 0);
         print_int (i 5 %+ i 0);
         print_int (udiv (i 5) (i 0));
         print_int (urem (i 5) (i 0));
       ])

let test_eval_signed_division () =
  check_out "truncation toward zero" "-2\n-1\n2\n1\n"
    (main
       [
         print_int (neg (i 7) /% i 3);
         print_int (neg (i 7) %+ i 3);
         print_int (neg (i 7) /% neg (i 3));
         print_int (i 7 %+ neg (i 3));
       ])

let test_eval_shift_saturation () =
  check_out "shl 32 is 0" "0\n"
    (main [ let_ "n" (i 32); print_int (shl (i 1) (v "n")) ]);
  check_out "sar 40 keeps sign" "-1\n"
    (main [ let_ "n" (i 40); print_int (sar (i 0x80000000) (v "n")) ]);
  check_out "amount masked to byte" "2\n"
    (main [ let_ "n" (i 257); print_int (shl (i 1) (v "n")) ])

let test_eval_for_semantics () =
  (* bound evaluated once, induction variable assignable *)
  check_out "bound fixed at entry" "5\n"
    (main
       [
         let_ "n" (i 5);
         let_ "c" (i 0);
         for_ "k" (i 0) (v "n") [ set "n" (i 100); incr_ "c" ];
         print_int (v "c");
       ]);
  check_out "body may advance induction" "3\n"
    (main
       [
         let_ "c" (i 0);
         for_ "k" (i 0) (i 6) [ incr_ "c"; incr_ "k" ];
         print_int (v "c");
       ])

let test_eval_continue_semantics () =
  check_out "continue still increments" "12\n"
    (main
       [
         let_ "acc" (i 0);
         for_ "k" (i 0) (i 7)
           [
             when_ (band (v "k") (i 1) =% i 1) [ continue_ ];
             set "acc" (v "acc" +% v "k");
           ];
         print_int (v "acc");
       ])

let test_eval_memory_faults () =
  Alcotest.(check bool) "oob store raises" true
    (try
       ignore
         (Eval.run
            (program
               [ garray "g" W32 4 ]
               [ func "main" [] [ setidx32 "g" (i 100000) (i 1) ] ]));
       false
     with Eval.Runtime_error _ -> true)

let test_eval_step_budget () =
  Alcotest.(check bool) "infinite loop trips budget" true
    (try
       ignore (Eval.run ~max_steps:1000 (main [ while_ (i 1) [] ]));
       false
     with Eval.Runtime_error _ -> true)

(* ---- unrolling ---- *)

let sum_kernel hi =
  program
    [ garray "a" W32 64 ]
    [
      func "main" []
        [
          for_ "k" (i 0) hi [ setidx32 "a" (band (v "k") (i 63)) (v "k") ];
          let_ "s" (i 0);
          for_ "k" (i 0) (i 64) [ set "s" (v "s" +% idx32 "a" (v "k")) ];
          print_int (v "s");
        ];
    ]

let test_unroll_preserves_semantics () =
  List.iter
    (fun factor ->
      List.iter
        (fun hi ->
          let p = sum_kernel (i hi) in
          let expected = eval_out p in
          let unrolled = Transform.unroll ~factor p in
          Validate.check_exn unrolled;
          Alcotest.(check string)
            (Printf.sprintf "factor %d, trips %d" factor hi)
            expected (eval_out unrolled))
        [ 0; 1; 3; 7; 8; 64; 100 ])
    [ 2; 4; 8; 16 ]

let test_unroll_preserves_benchmarks () =
  (* observational equivalence on two real benchmarks *)
  List.iter
    (fun name ->
      let b = Pf_mibench.Registry.find name in
      let p = b.Pf_mibench.Registry.program ~scale:1 in
      let expected = eval_out p in
      let unrolled = Transform.unroll ~factor:6 p in
      Alcotest.(check string) name expected (eval_out unrolled))
    [ "crc32"; "fft" ]

let test_unroll_respects_break () =
  (* loops containing break must be left alone and stay correct *)
  let p =
    main
      [
        let_ "k" (i 0);
        for_ "j" (i 0) (i 100)
          [ when_ (v "j" =% i 5) [ break_ ]; incr_ "k" ];
        print_int (v "k");
      ]
  in
  Alcotest.(check string) "break untouched" (eval_out p)
    (eval_out (Transform.unroll ~factor:8 p))

let test_count_loops () =
  let p = sum_kernel (i 10) in
  let total, candidates = Transform.count_loops p in
  Alcotest.(check int) "two loops" 2 total;
  Alcotest.(check int) "both unrollable" 2 candidates

let test_unroll_identity () =
  let p = sum_kernel (i 10) in
  Alcotest.(check bool) "factor 1 is identity" true
    (Transform.unroll ~factor:1 p == p)

(* ---- builder sanity ---- *)

let test_builder_shapes () =
  (match idx32 "g" (i 3) with
  | Ast.Load { scale = Ast.W32; signed = false; _ } -> ()
  | _ -> Alcotest.fail "idx32 shape");
  (match v "x" <% i 3 with
  | Ast.Cmp (Ast.Lt, _, _) -> ()
  | _ -> Alcotest.fail "<% shape");
  match when_ (i 1) [ ret0 ] with
  | Ast.If (_, [ Ast.Return None ], []) -> ()
  | _ -> Alcotest.fail "when_ shape"

let tests =
  [
    Alcotest.test_case "validator catches errors" `Quick test_validator_catches;
    Alcotest.test_case "validator accepts the suite" `Quick
      test_validator_accepts;
    Alcotest.test_case "validator accumulates errors" `Quick
      test_validator_accumulates;
    Alcotest.test_case "eval: wraparound" `Quick test_eval_wraparound;
    Alcotest.test_case "eval: division by zero" `Quick
      test_eval_division_by_zero;
    Alcotest.test_case "eval: signed division" `Quick
      test_eval_signed_division;
    Alcotest.test_case "eval: shift saturation" `Quick
      test_eval_shift_saturation;
    Alcotest.test_case "eval: for-loop bound" `Quick test_eval_for_semantics;
    Alcotest.test_case "eval: continue" `Quick test_eval_continue_semantics;
    Alcotest.test_case "eval: memory faults" `Quick test_eval_memory_faults;
    Alcotest.test_case "eval: step budget" `Quick test_eval_step_budget;
    Alcotest.test_case "unroll: semantics preserved" `Quick
      test_unroll_preserves_semantics;
    Alcotest.test_case "unroll: real benchmarks" `Quick
      test_unroll_preserves_benchmarks;
    Alcotest.test_case "unroll: break untouched" `Quick
      test_unroll_respects_break;
    Alcotest.test_case "unroll: loop census" `Quick test_count_loops;
    Alcotest.test_case "unroll: factor 1 identity" `Quick test_unroll_identity;
    Alcotest.test_case "builder shapes" `Quick test_builder_shapes;
  ]
