let () =
  Alcotest.run "powerfits"
    [
      ("util", Test_util.tests);
      ("encode", Test_encode.tests);
      ("exec", Test_exec.tests);
      ("kir", Test_kir.tests);
      ("compile", Test_compile.tests);
      ("random-programs", Test_random_programs.tests);
      ("cache", Test_cache.tests);
      ("power", Test_power.tests);
      ("pipeline", Test_pipeline.tests);
      ("translate", Test_translate.tests);
      ("thumb", Test_thumb.tests);
      ("mibench", Test_mibench.tests);
      ("armgen-units", Test_armgen_units.tests);
      ("gen", Test_gen.tests);
      ("expr-sweep", Test_exprsweep.tests);
      ("fits-units", Test_fits_units.tests);
      ("harness", Test_harness.tests);
      ("parallel", Test_parallel.tests);
      ("fault", Test_fault.tests);
      ("fits", Test_fits.tests);
      ("multi", Test_multi.tests);
      ("alloc", Test_alloc.tests);
      ("dse", Test_dse.tests);
      ("differential", Test_differential.tests);
      ("serve", Test_serve.tests);
      ("workgen", Test_workgen.tests);
      ("mc", Test_mc.tests);
    ]
