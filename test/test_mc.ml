(* Multicore machine: memory-model allowed sets (SC vs TSO), scheduler
   determinism, snoop invalidation, coherence propagation, single-core
   bit-identity against the sequential engines, the full litmus sweep,
   and jobs-independence of seeded machine sweeps (QCheck). *)

module Mc = Pf_mc.Machine
module Model = Pf_mc.Model
module Litmus = Pf_mc.Litmus
module Sched = Pf_mc.Sched
module Step = Pf_cpu.Step
module C = Pf_cache.Icache

let build name =
  let b = Pf_mibench.Registry.find_exn name in
  Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll
    (b.Pf_mibench.Registry.program ~scale:1)

(* ---- memory model ------------------------------------------------------ *)

let sc t = Model.allowed_strings ~sb_capacity:0 t
let tso t = Model.allowed_strings ~sb_capacity:8 t

let has set o = List.mem o set

let test_model_sb () =
  (* SC: (0,0) needs store-load reordering and is excluded; TSO adds it *)
  let both_zero = "0:0 1:0 | x=1 y=1" in
  Alcotest.(check int) "SB has 3 SC outcomes" 3 (List.length (sc Litmus.sb));
  Alcotest.(check bool) "SC forbids (0,0)" false
    (has (sc Litmus.sb) both_zero);
  Alcotest.(check bool) "TSO allows (0,0)" true
    (has (tso Litmus.sb) both_zero);
  Alcotest.(check int) "TSO adds exactly (0,0)" 4
    (List.length (tso Litmus.sb))

let test_model_mp () =
  (* seeing the flag but not the data is forbidden under SC and TSO *)
  let stale = "0: 1:1,0 | x=1 y=1" in
  Alcotest.(check bool) "SC forbids stale data" false
    (has (sc Litmus.mp) stale);
  Alcotest.(check bool) "TSO forbids stale data too" false
    (has (tso Litmus.mp) stale)

let test_model_lb () =
  (* a FIFO store buffer cannot produce load buffering *)
  let lb = "0:1 1:1 | x=1 y=1" in
  Alcotest.(check bool) "SC forbids LB" false (has (sc Litmus.lb) lb);
  Alcotest.(check bool) "TSO forbids LB" false (has (tso Litmus.lb) lb)

let test_model_fence () =
  (* fences drain the buffers: the TSO set collapses back to SC *)
  Alcotest.(check (list string)) "fenced SB: TSO = SC" (sc Litmus.sb_fence)
    (tso Litmus.sb_fence);
  Alcotest.(check bool) "fenced SB forbids (0,0) under TSO" false
    (has (tso Litmus.sb_fence) "0:0 1:0 | x=1 y=1")

let test_model_coww () =
  let finals =
    List.map (fun (_, o) -> List.assoc "x" o.Model.finals)
      (Model.allowed ~sb_capacity:0 Litmus.coww)
  in
  Alcotest.(check (list int)) "CoWW final x is 2 or 3" [ 2; 3 ]
    (List.sort compare finals)

let test_model_iriw () =
  (* 16 read combinations minus the one where the readers disagree on
     the write order *)
  Alcotest.(check int) "IRIW has 15 SC outcomes" 15
    (List.length (sc Litmus.iriw))

(* ---- scheduler --------------------------------------------------------- *)

let picks policy seed n =
  let s = Sched.create ~policy ~ncores:4 seed in
  List.init n (fun _ ->
      match Sched.next s ~runnable:(fun _ -> true) with
      | Some c -> c
      | None -> -1)

let test_sched_deterministic () =
  Alcotest.(check (list int)) "random policy replays bit-identically"
    (picks Sched.Seeded_random 42 64)
    (picks Sched.Seeded_random 42 64);
  Alcotest.(check bool) "different seeds differ" true
    (picks Sched.Seeded_random 1 64 <> picks Sched.Seeded_random 2 64)

let test_sched_rr () =
  Alcotest.(check (list int)) "round-robin cycles"
    [ 0; 1; 2; 3; 0; 1; 2; 3 ]
    (picks Sched.Round_robin 0 8);
  (* halted cores are skipped, the rest keep cycling *)
  let s = Sched.create ~policy:Sched.Round_robin ~ncores:3 0 in
  let run = List.init 6 (fun _ ->
      match Sched.next s ~runnable:(fun c -> c <> 1) with
      | Some c -> c
      | None -> -1)
  in
  Alcotest.(check (list int)) "rr skips non-runnable" [ 0; 2; 0; 2; 0; 2 ] run;
  Alcotest.(check bool) "quiesced machine yields None" true
    (Sched.next s ~runnable:(fun _ -> false) = None)

(* ---- snoop invalidation ------------------------------------------------ *)

let test_invalidate_addr () =
  let c = C.create (C.config ~size_bytes:1024 ()) in
  ignore (C.access_count c ~addr:0x100);
  Alcotest.(check bool) "line present: invalidated" true
    (C.invalidate_addr c ~addr:0x104);
  Alcotest.(check bool) "second invalidate misses" false
    (C.invalidate_addr c ~addr:0x100);
  Alcotest.(check bool) "re-access misses after invalidate" false
    (C.access_count c ~addr:0x100)

(* ---- coherence layer --------------------------------------------------- *)

let test_coherence_propagation () =
  let mems = [| Bytes.make 256 '\000'; Bytes.make 256 '\000' |] in
  let dcaches =
    [| C.create (C.config ~size_bytes:1024 ());
       C.create (C.config ~size_bytes:1024 ()) |]
  in
  let coh =
    Pf_mc.Coherence.create ~sync_addr:64 ~base:0 ~limit:128 ~mems ~dcaches ()
  in
  ignore (C.access_count dcaches.(1) ~addr:32);
  Bytes.set_int32_le mems.(0) 32 0xdeadbeefl;
  Pf_mc.Coherence.post_store coh ~core:0 ~addr:32 ~words:1;
  Alcotest.(check int32) "word propagated to the other core" 0xdeadbeefl
    (Bytes.get_int32_le mems.(1) 32);
  let s = Pf_mc.Coherence.stats coh in
  Alcotest.(check int) "one store through" 1 s.Pf_mc.Coherence.stores_through;
  Alcotest.(check int) "one line snooped" 1 s.Pf_mc.Coherence.invalidations;
  Alcotest.(check bool) "snooped line misses on re-access" false
    (C.access_count dcaches.(1) ~addr:32);
  (* outside the window: nothing happens *)
  Bytes.set_int32_le mems.(0) 200 1l;
  Pf_mc.Coherence.post_store coh ~core:0 ~addr:200 ~words:1;
  Alcotest.(check int32) "private store not propagated" 0l
    (Bytes.get_int32_le mems.(1) 200);
  (* fence marker counted *)
  Pf_mc.Coherence.post_store coh ~core:0 ~addr:64 ~words:1;
  Alcotest.(check int) "fence counted" 1
    (Pf_mc.Coherence.stats coh).Pf_mc.Coherence.fences

(* ---- single-core bit-identity ------------------------------------------ *)

let fbits = Int64.bits_of_float

let check_power name (a : Pf_power.Account.report)
    (b : Pf_power.Account.report) =
  Alcotest.(check int64) (name ^ ": switching") (fbits a.switching)
    (fbits b.switching);
  Alcotest.(check int64) (name ^ ": internal") (fbits a.internal)
    (fbits b.internal);
  Alcotest.(check int64) (name ^ ": leakage") (fbits a.leakage)
    (fbits b.leakage);
  Alcotest.(check int64) (name ^ ": total") (fbits a.total) (fbits b.total);
  Alcotest.(check int64) (name ^ ": peak") (fbits a.peak_power)
    (fbits b.peak_power);
  Alcotest.(check int) (name ^ ": power cycles") a.cycles b.cycles

let run_single_core core =
  let sched = Sched.create ~policy:Sched.Round_robin ~ncores:1 0 in
  let m = Mc.create ~sched [| ("c0", core) |] in
  Mc.run m;
  Step.result (Mc.core m 0)

let test_arm_bit_identity () =
  let image = build "crc32" in
  let seq = Pf_cpu.Arm_run.run ~engine:Predecoded image in
  let mc = run_single_core (Mc.arm_core image) in
  Alcotest.(check int) "instructions" seq.Pf_cpu.Arm_run.instructions
    mc.Step.instructions;
  Alcotest.(check int) "cycles" seq.Pf_cpu.Arm_run.cycles mc.Step.cycles;
  Alcotest.(check int64) "ipc" (fbits seq.Pf_cpu.Arm_run.ipc)
    (fbits mc.Step.ipc);
  Alcotest.(check int) "fetch accesses" seq.Pf_cpu.Arm_run.fetch_accesses
    mc.Step.fetch_accesses;
  Alcotest.(check string) "output" seq.Pf_cpu.Arm_run.output mc.Step.output;
  Alcotest.(check int) "cache accesses" seq.Pf_cpu.Arm_run.cache_accesses
    mc.Step.cache_accesses;
  Alcotest.(check int) "cache misses" seq.Pf_cpu.Arm_run.cache_misses
    mc.Step.cache_misses;
  Alcotest.(check int64) "miss rate"
    (fbits seq.Pf_cpu.Arm_run.miss_rate_per_million)
    (fbits mc.Step.miss_rate_per_million);
  Alcotest.(check int64) "dcache miss rate"
    (fbits seq.Pf_cpu.Arm_run.dcache_miss_rate_pm)
    (fbits mc.Step.dcache_miss_rate_pm);
  check_power "arm" seq.Pf_cpu.Arm_run.power mc.Step.power

let test_fits_bit_identity () =
  let image = build "crc32" in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let seq = Pf_fits.Run.run ~engine:Predecoded tr in
  (* fits_core re-runs the same deterministic synthesis pipeline *)
  let mc = run_single_core (Mc.fits_core image) in
  Alcotest.(check int) "fits instructions" seq.Pf_fits.Run.fits_instructions
    mc.Step.instructions;
  Alcotest.(check int) "arm instructions" seq.Pf_fits.Run.arm_instructions
    mc.Step.src_instructions;
  Alcotest.(check int) "cycles" seq.Pf_fits.Run.cycles mc.Step.cycles;
  Alcotest.(check int64) "ipc" (fbits seq.Pf_fits.Run.ipc)
    (fbits mc.Step.ipc);
  Alcotest.(check int) "fetch accesses" seq.Pf_fits.Run.fetch_accesses
    mc.Step.fetch_accesses;
  Alcotest.(check string) "output" seq.Pf_fits.Run.output mc.Step.output;
  Alcotest.(check int) "cache accesses" seq.Pf_fits.Run.cache_accesses
    mc.Step.cache_accesses;
  Alcotest.(check int) "cache misses" seq.Pf_fits.Run.cache_misses
    mc.Step.cache_misses;
  Alcotest.(check int64) "miss rate"
    (fbits seq.Pf_fits.Run.miss_rate_per_million)
    (fbits mc.Step.miss_rate_per_million);
  check_power "fits" seq.Pf_fits.Run.power mc.Step.power

(* ---- litmus sweep (the acceptance criterion) --------------------------- *)

let test_litmus_sweep () =
  List.iter
    (fun t ->
      let r = Litmus.run ~policy:Sched.Seeded_random ~seeds:1000 ~jobs:4 t in
      Alcotest.(check (list (pair string int)))
        (r.Litmus.name ^ ": no forbidden outcomes") [] r.Litmus.forbidden;
      List.iter
        (fun (o, _) ->
          Alcotest.(check bool)
            (r.Litmus.name ^ ": " ^ o ^ " in the SC set")
            true
            (List.mem o r.Litmus.allowed))
        r.Litmus.observed)
    Litmus.tests;
  (* the sweep must actually exercise interleaving: MP shows more than
     one outcome across 1000 seeds *)
  let mp = Litmus.run ~policy:Sched.Seeded_random ~seeds:1000 ~jobs:4
      Litmus.mp
  in
  Alcotest.(check bool) "MP observes multiple interleavings" true
    (List.length mp.Litmus.observed >= 2)

let test_litmus_rr_policy () =
  (* round-robin is one fixed interleaving: a single outcome per test,
     still inside the allowed set *)
  let r = Litmus.run ~policy:Sched.Round_robin ~seeds:8 ~jobs:1 Litmus.sb in
  Alcotest.(check int) "rr yields one outcome" 1
    (List.length r.Litmus.observed);
  Alcotest.(check (list (pair string int))) "rr outcome allowed" []
    r.Litmus.forbidden

(* ---- jobs-independence (QCheck) ---------------------------------------- *)

let trace_digest t =
  let h = ref 0x3bf29ce484222325 in
  let mix v = h := (!h lxor v) * 0x100000001b3 land max_int in
  Pf_cpu.Trace.iter t (fun addr meta -> mix addr; mix meta);
  !h

let machine_digest seed =
  let images = [| build "crc32"; build "stringsearch" |] in
  let traces =
    Array.map (fun _ -> Pf_cpu.Trace.create ~isize:4 ()) images
  in
  let cores =
    Array.mapi
      (fun i img ->
        (Printf.sprintf "c%d" i, Mc.arm_core ~trace:traces.(i) img))
      images
  in
  let sched =
    Sched.create ~policy:Sched.Seeded_random ~ncores:(Array.length cores)
      seed
  in
  let m = Mc.create ~sched cores in
  Mc.run m;
  let r = Mc.report m in
  let b = Buffer.create 128 in
  Array.iter (fun t -> Buffer.add_string b (string_of_int (trace_digest t)))
    traces;
  Array.iter
    (fun (label, (c : Step.result)) ->
      Buffer.add_string b
        (Printf.sprintf "%s/%d/%d/%Lx/%d/%Lx" label c.Step.instructions
           c.Step.cycles (fbits c.Step.ipc) c.Step.cache_misses
           (fbits c.Step.power.Pf_power.Account.total)))
    r.Mc.cores;
  Buffer.add_string b
    (Printf.sprintf "|%d/%d/%d/%Lx" r.Mc.instructions r.Mc.cycles r.Mc.slices
       (fbits r.Mc.power.Mc.total));
  Buffer.contents b

let prop_jobs_independent =
  QCheck.Test.make
    ~name:"machine sweep is byte-identical at --jobs 1 and --jobs 4"
    ~count:3 (QCheck.int_bound 10_000)
    (fun base ->
      let seeds = [ base; base + 1; base + 2; base + 3 ] in
      Pf_util.Pool.map ~jobs:1 machine_digest seeds
      = Pf_util.Pool.map ~jobs:4 machine_digest seeds)

(* ---- jobs validation --------------------------------------------------- *)

let test_validate_jobs () =
  Alcotest.(check int) "valid count passes through" 3
    (Pf_util.Pool.validate_jobs 3);
  let bad k =
    match Pf_util.Pool.validate_jobs k with
    | _ -> false
    | exception Pf_util.Sim_error.Error e ->
        e.Pf_util.Sim_error.kind = Pf_util.Sim_error.Invalid_config
  in
  Alcotest.(check bool) "0 rejected" true (bad 0);
  Alcotest.(check bool) "negative rejected" true (bad (-2));
  Alcotest.(check bool) "Pool.map validates too" true
    (match Pf_util.Pool.map ~jobs:0 (fun x -> x) [ 1 ] with
    | _ -> false
    | exception Pf_util.Sim_error.Error e ->
        e.Pf_util.Sim_error.kind = Pf_util.Sim_error.Invalid_config)

let tests =
  [
    Alcotest.test_case "model: SB separates SC from TSO" `Quick test_model_sb;
    Alcotest.test_case "model: MP forbidden under SC and TSO" `Quick
      test_model_mp;
    Alcotest.test_case "model: LB forbidden under SC and TSO" `Quick
      test_model_lb;
    Alcotest.test_case "model: fences collapse TSO to SC" `Quick
      test_model_fence;
    Alcotest.test_case "model: CoWW write serialization" `Quick
      test_model_coww;
    Alcotest.test_case "model: IRIW outcome count" `Quick test_model_iriw;
    Alcotest.test_case "sched: deterministic in the seed" `Quick
      test_sched_deterministic;
    Alcotest.test_case "sched: round-robin skips halted cores" `Quick
      test_sched_rr;
    Alcotest.test_case "icache: snoop invalidation" `Quick
      test_invalidate_addr;
    Alcotest.test_case "coherence: write-through propagation" `Quick
      test_coherence_propagation;
    Alcotest.test_case "single ARM core is bit-identical to Arm_run" `Slow
      test_arm_bit_identity;
    Alcotest.test_case "single FITS core is bit-identical to Fits.Run" `Slow
      test_fits_bit_identity;
    Alcotest.test_case "litmus: 1000-seed sweep stays in the SC set" `Slow
      test_litmus_sweep;
    Alcotest.test_case "litmus: round-robin is a single allowed outcome"
      `Quick test_litmus_rr_policy;
    QCheck_alcotest.to_alcotest prop_jobs_independent;
    Alcotest.test_case "jobs validation is structured and uniform" `Quick
      test_validate_jobs;
  ]
