(* Benchmark-suite integrity: every program is checked compiled-vs-
   reference at suite scale, and the full FITS stack on a cross-category
   subset.  These are the "the workloads themselves are correct programs"
   tests — e.g. blowfish/rijndael must survive their own decrypt(encrypt(x))
   round trips, qsort must actually sort, adpcm must track the waveform. *)

let registry = Pf_mibench.Registry.all

let test_registry_shape () =
  Alcotest.(check int) "21 benchmarks" 21 (List.length registry);
  Alcotest.(check int) "19 in the power study" 19
    (List.length Pf_mibench.Registry.power_suite);
  let names = List.map (fun b -> b.Pf_mibench.Registry.name) registry in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  (* the paper's exclusions *)
  Alcotest.(check bool) "basicmath excluded from power" true
    (not
       (List.exists
          (fun b -> b.Pf_mibench.Registry.name = "basicmath")
          Pf_mibench.Registry.power_suite));
  Alcotest.(check bool) "gsm renamed" true
    (List.exists
       (fun b -> b.Pf_mibench.Registry.name = "gsm")
       Pf_mibench.Registry.power_suite);
  (* find resolves both spellings *)
  Alcotest.(check string) "find gsm" "gsm.decode"
    (Pf_mibench.Registry.find "gsm").Pf_mibench.Registry.name;
  Alcotest.(check bool) "find unknown raises" true
    (try
       ignore (Pf_mibench.Registry.find "nonesuch");
       false
     with Not_found -> true);
  (* find_exn: same lookup, but a structured error naming the valid set *)
  Alcotest.(check string) "find_exn gsm" "gsm.decode"
    (Pf_mibench.Registry.find_exn "gsm").Pf_mibench.Registry.name;
  Alcotest.(check bool) "find_exn unknown raises Sim_error listing names"
    true
    (try
       ignore (Pf_mibench.Registry.find_exn "nonesuch");
       false
     with Pf_util.Sim_error.Error e ->
       let s = Pf_util.Sim_error.to_string e in
       let contains sub =
         let n = String.length sub and m = String.length s in
         let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       contains "nonesuch" && contains "crc32")

let test_categories () =
  let count cat =
    List.length
      (List.filter (fun b -> b.Pf_mibench.Registry.category = cat) registry)
  in
  Alcotest.(check int) "automotive" 4 (count "automotive");
  Alcotest.(check int) "consumer" 2 (count "consumer");
  Alcotest.(check int) "network" 2 (count "network");
  Alcotest.(check int) "office" 2 (count "office");
  Alcotest.(check int) "security" 5 (count "security");
  Alcotest.(check int) "telecomm" 6 (count "telecomm")

(* compiled-vs-evaluator equivalence for every benchmark *)
let equivalence_case (b : Pf_mibench.Registry.benchmark) =
  Alcotest.test_case b.Pf_mibench.Registry.name `Slow (fun () ->
      let p = b.Pf_mibench.Registry.program ~scale:1 in
      let expected = (Pf_kir.Eval.run p).Pf_kir.Eval.output in
      Alcotest.(check bool) "produces output" true
        (String.length expected > 0);
      let image =
        Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
      in
      let actual = Pf_armgen.Compile.run image in
      Alcotest.(check string) "compiled output" expected actual)

(* full four-config consistency on one benchmark per category *)
let full_stack_case name =
  Alcotest.test_case ("4-config " ^ name) `Slow (fun () ->
      let b = Pf_mibench.Registry.find name in
      let r = Pf_harness.Experiment.run_benchmark b in
      Alcotest.(check bool) "outputs consistent" true
        r.Pf_harness.Experiment.outputs_consistent;
      Alcotest.(check bool) "static mapping over 85%" true
        (r.Pf_harness.Experiment.static_map_pct > 85.0);
      Alcotest.(check bool) "FITS code smaller" true
        (r.Pf_harness.Experiment.code_fits < r.Pf_harness.Experiment.code_arm))

let test_outputs_scale_sensitive () =
  (* scaling the input must change the work actually done *)
  let b = Pf_mibench.Registry.find "crc32" in
  let p1 = b.Pf_mibench.Registry.program ~scale:1 in
  let p2 = b.Pf_mibench.Registry.program ~scale:2 in
  let r1 = Pf_kir.Eval.run p1 and r2 = Pf_kir.Eval.run p2 in
  Alcotest.(check bool) "steps grow with scale" true
    (r2.Pf_kir.Eval.steps > r1.Pf_kir.Eval.steps)

let test_blowfish_roundtrip_holds () =
  (* the decode benchmark checksums the decrypted buffer; it must match a
     fresh checksum of the same generated plaintext *)
  let plain = Pf_mibench.Gen.words ~seed:0xB1D 512 in
  let cks =
    Array.fold_left
      (fun acc w -> Pf_util.Bits.u32 (Pf_util.Bits.u32 (acc * 131) lxor w))
      0 plain
  in
  let expected = Pf_util.Bits.to_signed32 cks in
  let out =
    (Pf_kir.Eval.run (Pf_mibench.Blowfish.program_decode ~scale:1)).Pf_kir.Eval
      .output
  in
  (* last printed line is the buffer checksum after decrypt *)
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  let last = List.nth lines (List.length lines - 1) in
  Alcotest.(check string) "decrypt restored the plaintext"
    (string_of_int expected) last

let test_qsort_sorts () =
  let out =
    (Pf_kir.Eval.run (Pf_mibench.Qsort_bench.program ~scale:1)).Pf_kir.Eval
      .output
  in
  match String.split_on_char '\n' out with
  | sorted :: _ -> Alcotest.(check string) "sorted flag printed" "1" sorted
  | [] -> Alcotest.fail "no output"

let tests =
  [
    Alcotest.test_case "registry shape" `Quick test_registry_shape;
    Alcotest.test_case "category census" `Quick test_categories;
    Alcotest.test_case "scale sensitivity" `Quick test_outputs_scale_sensitive;
    Alcotest.test_case "blowfish round trip" `Quick
      test_blowfish_roundtrip_holds;
    Alcotest.test_case "qsort sorts" `Quick test_qsort_sorts;
  ]
  @ List.map equivalence_case registry
  @ List.map full_stack_case
      [ "bitcount"; "jpeg"; "dijkstra"; "stringsearch"; "sha"; "gsm" ]
