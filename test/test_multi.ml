(* Multi-program synthesis: profile-algebra laws (QCheck), shared-ISA
   determinism across worker-domain counts, and the leave-one-out
   differential check — a LOO campaign cell must be bit-identical to a
   direct per-app-style simulation of the held-out program under the same
   spec. *)

module P = Pf_fits.Profile
module S = Pf_multi.Suite
module E = Pf_multi.Eval
module W = Pf_multi.Weighting

let small_suite =
  List.map Pf_mibench.Registry.find_exn [ "crc32"; "bitcount"; "stringsearch" ]

let prepared = lazy (S.prepare ~jobs:1 small_suite)

(* ---- profile-algebra laws ---------------------------------------------- *)

(* Real profiles (three benchmarks), their scaled variants, and the empty
   profile: a pool rich enough that the laws are exercised on overlapping
   and disjoint key sets alike.  Properties draw random pool indices. *)
let pool =
  lazy
    (let ps = Lazy.force prepared in
     Array.of_list
       (P.create ()
        :: List.map (fun p -> p.S.profile) ps
       @ List.map (fun p -> P.scale p.S.profile 3) ps))

let pool_size = 7
let pick i = (Lazy.force pool).(i)
let idx = QCheck.int_bound (pool_size - 1)

let prop_merge_commutative =
  QCheck.Test.make ~name:"Profile.merge is commutative" ~count:60
    (QCheck.pair idx idx)
    (fun (i, j) ->
      P.equal (P.merge (pick i) (pick j)) (P.merge (pick j) (pick i)))

let prop_merge_associative =
  QCheck.Test.make ~name:"Profile.merge is associative" ~count:60
    (QCheck.triple idx idx idx)
    (fun (i, j, k) ->
      P.equal
        (P.merge (P.merge (pick i) (pick j)) (pick k))
        (P.merge (pick i) (P.merge (pick j) (pick k))))

let prop_merge_identity =
  QCheck.Test.make ~name:"merge with the empty profile is the identity"
    ~count:pool_size idx (fun i ->
      P.equal (P.merge (P.create ()) (pick i)) (pick i))

let prop_merge_all_singleton =
  QCheck.Test.make ~name:"merge_all [p] = p" ~count:pool_size idx (fun i ->
      P.equal (P.merge_all [ pick i ]) (pick i))

let prop_scale_one =
  QCheck.Test.make ~name:"scale p 1 = p" ~count:pool_size idx (fun i ->
      P.equal (P.scale (pick i) 1) (pick i))

(* ---- weighting --------------------------------------------------------- *)

let test_weighting_parse () =
  Alcotest.(check bool) "uniform" true (W.of_string "uniform" = Ok W.Uniform);
  Alcotest.(check bool) "dyn alias" true (W.of_string "dyn" = Ok W.Dyn_count);
  Alcotest.(check bool) "custom" true
    (W.of_string "crc32=2,sha=1" = Ok (W.Custom [ ("crc32", 2); ("sha", 1) ]));
  Alcotest.(check bool) "garbage rejected" true
    (match W.of_string "nonesuch" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "bad int rejected" true
    (match W.of_string "crc32=two" with Error _ -> true | Ok _ -> false)

let test_weighting_validate () =
  let names = [ "a"; "b" ] in
  W.validate W.Uniform ~names;
  W.validate (W.Custom [ ("a", 1); ("b", 5) ]) ~names;
  let rejects w =
    try
      W.validate w ~names;
      false
    with Pf_util.Sim_error.Error _ -> true
  in
  Alcotest.(check bool) "missing program" true
    (rejects (W.Custom [ ("a", 1) ]));
  Alcotest.(check bool) "unknown program" true
    (rejects (W.Custom [ ("a", 1); ("b", 1); ("c", 1) ]));
  Alcotest.(check bool) "zero weight" true
    (rejects (W.Custom [ ("a", 0); ("b", 1) ]));
  Alcotest.(check bool) "duplicate" true
    (rejects (W.Custom [ ("a", 1); ("a", 2); ("b", 1) ]));
  Alcotest.(check int) "uniform multiplier is >= 1" 1
    (min 1 (W.multiplier W.Uniform ~name:"a" ~dyn_insns:max_int))

(* ---- determinism across worker-domain counts --------------------------- *)

let campaign jobs = E.run ~loo:true ~jobs small_suite

(* the banner prints the jobs count on purpose; everything else must match *)
let render c =
  S.coverage_table c.E.c_shared
  ^ Pf_fits.Spec.describe c.E.c_shared.S.spec
  ^ E.table c ^ E.summary c

let test_jobs_determinism () =
  let c1 = campaign 1 and c4 = campaign 4 in
  Alcotest.(check int) "all rows completed" c1.E.c_total c1.E.c_completed;
  Alcotest.(check bool) "shared dictionaries identical" true
    (c1.E.c_shared.S.spec.Pf_fits.Spec.dict
    = c4.E.c_shared.S.spec.Pf_fits.Spec.dict);
  Alcotest.(check string) "every report identical across jobs 1/4"
    (render c1) (render c4)

(* ---- leave-one-out differential ---------------------------------------- *)

(* The campaign evaluates the held-out program via translate + FITS16 run
   + 8 KB trace replay.  A direct simulation under the same spec — the
   per-application flow's shape — must agree bit for bit. *)
let test_loo_differential () =
  let ps = Lazy.force prepared in
  let held = List.hd ps in
  let spec =
    E.loo_spec ~weighting:W.Dyn_count ~dict_budget:S.default_dict_budget ps
      (S.name held)
  in
  let cell = E.eval_cell ~isa:E.Loo spec held in
  Alcotest.(check bool) "LOO cell output matches reference" true
    cell.E.output_ok;
  let tr = Pf_fits.Translate.translate spec held.S.image in
  let direct16 =
    Pf_fits.Run.run ~cache_cfg:Pf_harness.Experiment.cache_16k tr
  in
  let direct8 =
    Pf_fits.Run.run ~cache_cfg:Pf_harness.Experiment.cache_8k tr
  in
  Alcotest.(check bool) "FITS16 cell = direct simulation" true
    (Pf_harness.Experiment.of_fits direct16 = cell.E.fits16);
  Alcotest.(check bool) "FITS8 replay cell = direct simulation" true
    (Pf_harness.Experiment.of_fits direct8 = cell.E.fits8)

(* ---- expected directions ----------------------------------------------- *)

(* Sanity, not calibration: a shared ISA cannot beat each program's own,
   and the spilled-immediate count must be zero exactly when the program
   was inside the synthesis set (its values were all on the table). *)
let test_shared_coverage_sane () =
  let ps = Lazy.force prepared in
  let sh = S.synthesize_shared ps in
  Alcotest.(check int) "one coverage row per program" (List.length ps)
    (List.length sh.S.coverage);
  List.iter
    (fun (c : S.coverage) ->
      Alcotest.(check bool)
        (c.S.cov_name ^ ": static mapping rate in range") true
        (c.S.static_map_pct >= 0. && c.S.static_map_pct <= 100.);
      Alcotest.(check bool) (c.S.cov_name ^ ": positive code size") true
        (c.S.code_bytes_fits > 0))
    sh.S.coverage;
  Alcotest.(check bool) "shared dictionary within budget" true
    (Array.length sh.S.spec.Pf_fits.Spec.dict <= S.default_dict_budget)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    QCheck_alcotest.to_alcotest prop_merge_identity;
    QCheck_alcotest.to_alcotest prop_merge_all_singleton;
    QCheck_alcotest.to_alcotest prop_scale_one;
    Alcotest.test_case "weighting parses CLI spellings" `Quick
      test_weighting_parse;
    Alcotest.test_case "weighting validation rejects bad schemes" `Quick
      test_weighting_validate;
    Alcotest.test_case "campaign is identical for jobs 1 and 4" `Slow
      test_jobs_determinism;
    Alcotest.test_case "LOO cell equals direct simulation" `Slow
      test_loo_differential;
    Alcotest.test_case "shared coverage is sane" `Quick
      test_shared_coverage_sane;
  ]
