(* Trace-once/replay-many and parallel-sweep tests: replayed statistics
   must be bit-identical to direct simulation, sweeps must report the
   same thing for every jobs count, and the monotonic deadline watchdog
   must fire inside a spawned worker domain (where the old SIGALRM one
   could not). *)

module E = Pf_harness.Experiment
module Pool = Pf_harness.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Pool unit tests ---- *)

let test_pool_order () =
  let xs = List.init 100 Fun.id in
  let seq = Pool.map ~jobs:1 (fun x -> (x * x) + 1) xs in
  let par = Pool.map ~jobs:4 (fun x -> (x * x) + 1) xs in
  check_bool "parallel map preserves input order" true (seq = par);
  check_bool "empty input" true (Pool.map ~jobs:4 Fun.id [] = []);
  check_bool "more jobs than elements" true
    (Pool.map ~jobs:8 succ [ 1; 2 ] = [ 2; 3 ])

exception Boom of int

let test_pool_single_error () =
  (* exactly one element fails: its own exception is re-raised intact *)
  let got =
    try
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x = 7 then raise (Boom x) else x)
           (List.init 20 (fun i -> i + 1)));
      None
    with Boom x -> Some x
  in
  check_bool "single failure re-raised as-is" true (got = Some 7)

let test_pool_error_aggregation () =
  (* several elements fail in parallel; every failure must appear in one
     aggregated Sim_error, deterministically, for any jobs count *)
  let run jobs =
    try
      ignore
        (Pool.map ~jobs
           (fun x ->
             if x mod 3 = 0 then raise (Boom x)
             else if x = 10 then
               Pf_util.Sim_error.raisef Pf_util.Sim_error.Memory_fault
                 ~where:"test" "bad access at %d" x
             else x)
           (List.init 20 (fun i -> i + 1)));
      None
    with Pf_util.Sim_error.Error e -> Some e
  in
  match (run 1, run 4) with
  | Some e1, Some e4 ->
      check_bool "aggregate error from util.pool" true
        (e1.Pf_util.Sim_error.where = "util.pool");
      (* kind follows the lowest-indexed failure: Boom 3 is not a
         Sim_error, so the aggregate is Internal *)
      check_bool "kind from lowest-indexed failure" true
        (e1.Pf_util.Sim_error.kind = Pf_util.Sim_error.Internal);
      List.iter
        (fun frag ->
          check_bool ("detail mentions " ^ frag) true
            (let detail = e1.Pf_util.Sim_error.detail in
             let rec find i =
               i + String.length frag <= String.length detail
               && (String.sub detail i (String.length frag) = frag
                   || find (i + 1))
             in
             find 0))
        [ "7 of 20"; "Boom(3)"; "Boom(18)"; "memory-fault"; "bad access at 10" ];
      check_bool "aggregation deterministic across jobs" true
        (e1.Pf_util.Sim_error.detail = e4.Pf_util.Sim_error.detail)
  | _ -> Alcotest.fail "expected aggregated Sim_error at jobs=1 and jobs=4"

let test_pool_service () =
  (* bounded admission: a stalled worker keeps the queue full, submits
     beyond capacity are refused, drain completes the accepted work *)
  let gate = Mutex.create () in
  let processed = Atomic.make 0 in
  Mutex.lock gate;
  let svc =
    Pool.Service.create ~jobs:1 ~capacity:2 (fun () ->
        Mutex.lock gate;
        Mutex.unlock gate;
        Atomic.incr processed)
  in
  check_bool "first submit accepted" true (Pool.Service.submit svc ());
  (* first task is now either queued or blocking on the gate; fill the
     queue behind it *)
  let rec fill n =
    if Pool.Service.submit svc () then fill (n + 1) else n
  in
  let extra = fill 0 in
  check_bool "bounded queue eventually refuses" true (extra <= 3);
  check_int "capacity" 2 (Pool.Service.capacity svc);
  check_int "workers" 1 (Pool.Service.workers svc);
  Mutex.unlock gate;
  Pool.Service.drain svc;
  check_int "all accepted tasks ran" (Pool.Service.accepted svc)
    (Atomic.get processed);
  check_bool "submit after drain refused" true
    (not (Pool.Service.submit svc ()));
  check_int "drained service is idle" 0 (Pool.Service.depth svc)

let test_pool_service_error_isolation () =
  (* a raising task must not kill its worker domain *)
  let errors = Atomic.make 0 in
  let ok = Atomic.make 0 in
  let svc =
    Pool.Service.create ~jobs:2 ~capacity:16
      ~on_error:(fun _ -> Atomic.incr errors)
      (fun i -> if i mod 2 = 0 then raise (Boom i) else Atomic.incr ok)
  in
  List.iter (fun i -> check_bool "accepted" true (Pool.Service.submit svc i))
    (List.init 10 Fun.id);
  Pool.Service.drain svc;
  check_int "failures routed to on_error" 5 (Atomic.get errors);
  check_int "successes still processed" 5 (Atomic.get ok)

(* ---- replay equivalence ---- *)

(* Direct simulation at 8 KB vs replaying the 16 KB recording through an
   8 KB cache (and vice versa): cache geometry cannot change
   architectural behaviour, so every statistic must match exactly. *)
let replay_benchmarks = [ "crc32"; "bitcount"; "stringsearch" ]

let check_config name (direct : E.per_config) (replayed : E.per_config) =
  check_int (name ^ " instructions") direct.E.instructions
    replayed.E.instructions;
  check_int (name ^ " cycles") direct.E.cycles replayed.E.cycles;
  check_bool (name ^ " ipc") true (direct.E.ipc = replayed.E.ipc);
  check_int (name ^ " fetch accesses") direct.E.fetch_accesses
    replayed.E.fetch_accesses;
  check_int (name ^ " cache misses") direct.E.cache_misses
    replayed.E.cache_misses;
  check_bool (name ^ " miss rate") true
    (direct.E.miss_rate_pm = replayed.E.miss_rate_pm);
  check_bool (name ^ " dcache miss rate") true
    (direct.E.dcache_miss_rate_pm = replayed.E.dcache_miss_rate_pm);
  check_bool (name ^ " power report") true (direct.E.power = replayed.E.power)

let test_replay_equivalence () =
  List.iter
    (fun bench ->
      let b = Pf_mibench.Registry.find bench in
      let p = b.Pf_mibench.Registry.program ~scale:1 in
      let image =
        Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
      in
      (* ARM: record at 16 KB, replay at 8 KB, compare against direct *)
      let trace = Pf_cpu.Trace.create ~isize:4 () in
      let rec16 =
        Pf_cpu.Arm_run.run ~cache_cfg:E.cache_16k ~trace image
      in
      let direct8 = Pf_cpu.Arm_run.run ~cache_cfg:E.cache_8k image in
      let replay8 =
        Pf_cpu.Arm_run.replay ~cache_cfg:E.cache_8k
          ~output:rec16.Pf_cpu.Arm_run.output image trace
      in
      check_bool
        (bench ^ " arm outputs") true
        (direct8.Pf_cpu.Arm_run.output = replay8.Pf_cpu.Arm_run.output);
      check_bool (bench ^ " arm stats") true (direct8 = replay8);
      (* and replaying the recording at its own geometry reproduces it *)
      let replay16 =
        Pf_cpu.Arm_run.replay ~cache_cfg:E.cache_16k
          ~output:rec16.Pf_cpu.Arm_run.output image trace
      in
      check_bool (bench ^ " arm self-replay") true (rec16 = replay16);
      (* FITS: same property through the translated machine *)
      let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
      let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
      let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
      let ftrace = Pf_cpu.Trace.create ~isize:2 () in
      let frec16 =
        Pf_fits.Run.run ~cache_cfg:E.cache_16k ~trace:ftrace tr
      in
      let fdirect8 = Pf_fits.Run.run ~cache_cfg:E.cache_8k tr in
      let freplay8 =
        Pf_fits.Run.replay ~cache_cfg:E.cache_8k ~like:frec16 tr ftrace
      in
      check_bool (bench ^ " fits stats") true (fdirect8 = freplay8))
    replay_benchmarks

let test_run_benchmark_matches_direct () =
  (* run_benchmark's replayed 8 KB rows equal a from-scratch run_benchmark
     of the old shape: build the direct rows by hand *)
  let b = Pf_mibench.Registry.find "crc32" in
  let r = E.run_benchmark b in
  let p = b.Pf_mibench.Registry.program ~scale:1 in
  let image =
    Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
  in
  let direct_arm8 = Pf_cpu.Arm_run.run ~cache_cfg:E.cache_8k image in
  check_config "crc32 arm8"
    {
      E.instructions = direct_arm8.Pf_cpu.Arm_run.instructions;
      cycles = direct_arm8.Pf_cpu.Arm_run.cycles;
      ipc = direct_arm8.Pf_cpu.Arm_run.ipc;
      fetch_accesses = direct_arm8.Pf_cpu.Arm_run.fetch_accesses;
      cache_misses = direct_arm8.Pf_cpu.Arm_run.cache_misses;
      miss_rate_pm = direct_arm8.Pf_cpu.Arm_run.miss_rate_per_million;
      dcache_miss_rate_pm = direct_arm8.Pf_cpu.Arm_run.dcache_miss_rate_pm;
      power = direct_arm8.Pf_cpu.Arm_run.power;
    }
    r.E.arm8;
  check_bool "outputs consistent" true r.E.outputs_consistent

(* ---- parallel determinism ---- *)

let boom : Pf_mibench.Registry.benchmark =
  {
    Pf_mibench.Registry.name = "boom";
    result_name = "boom";
    category = "test";
    program = (fun ~scale:_ -> failwith "synthetic benchmark failure");
    power_study = false;
    unroll = 1;
  }

let strip_elapsed (s : E.sweep) =
  (* wall-clock per row and captured backtraces legitimately vary run to
     run (a worker domain's stack differs from the main domain's);
     everything else must not *)
  List.map
    (fun (r : E.sweep_row) ->
      let outcome =
        Result.map_error
          (fun e -> { e with Pf_util.Sim_error.backtrace = None })
          r.E.outcome
      in
      (r.E.bench, outcome, r.E.retried))
    s.E.rows

let test_jobs_determinism () =
  let benchmarks =
    [
      Pf_mibench.Registry.find "crc32";
      boom;
      Pf_mibench.Registry.find "bitcount";
      Pf_mibench.Registry.find "stringsearch";
    ]
  in
  let s1 = E.run_all ~benchmarks ~jobs:1 () in
  let s4 = E.run_all ~benchmarks ~jobs:4 () in
  check_int "completed" s1.E.completed s4.E.completed;
  check_int "total" s1.E.total s4.E.total;
  check_int "completed is 3 of 4" 3 s1.E.completed;
  check_bool "row-for-row identical" true
    (strip_elapsed s1 = strip_elapsed s4);
  check_int "jobs recorded" 4 s4.E.jobs;
  (* the boom row failed the same structured way on both *)
  let boom_row s =
    List.find (fun (r : E.sweep_row) -> r.E.bench = "boom") s.E.rows
  in
  check_bool "boom isolated under parallelism" true
    (Result.is_error (boom_row s4).E.outcome)

let test_campaign_jobs_determinism () =
  let b = Pf_mibench.Registry.find "crc32" in
  let p = b.Pf_mibench.Registry.program ~scale:1 in
  let image =
    Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
  in
  let dyn_counts, reference = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let campaign jobs =
    Pf_fault.Campaign.run ~trials:8 ~jobs ~target:Pf_fault.Injector.Decoder
      ~rate:0.003 ~seed:11 ~reference tr
  in
  let r1 = campaign 1 in
  let r4 = campaign 4 in
  check_bool "campaign report independent of jobs" true (r1 = r4);
  check_int "all trials accounted for" 8
    (r1.Pf_fault.Campaign.clean + r1.Pf_fault.Campaign.detected
   + r1.Pf_fault.Campaign.silent + r1.Pf_fault.Campaign.divergent
   + r1.Pf_fault.Campaign.crashed)

(* ---- deadline watchdog in a worker domain ---- *)

let test_deadline_in_worker_domain () =
  (* an already-expired deadline must trip the very first 64k-step poll
     of a run executing inside a spawned domain — exactly the situation
     the SIGALRM watchdog could not handle *)
  let row =
    Domain.join
      (Domain.spawn (fun () ->
           E.run_isolated ~wall_clock_s:1e-9
             (Pf_mibench.Registry.find "crc32")))
  in
  match row.E.outcome with
  | Error e ->
      check_bool "watchdog kind" true
        (e.Pf_util.Sim_error.kind = Pf_util.Sim_error.Watchdog_timeout)
  | Ok _ ->
      Alcotest.fail "expired deadline did not fire inside a worker domain"

let test_deadline_disabled () =
  (* wall_clock_s <= 0 disables the watchdog rather than tripping it *)
  let d = Pf_util.Deadline.after ~seconds:0. in
  check_bool "never expires" true (not (Pf_util.Deadline.expired d));
  Pf_util.Deadline.check (Some d);
  check_bool "remaining is infinite" true
    (Pf_util.Deadline.remaining_s d = infinity)

let tests =
  [
    Alcotest.test_case "pool: order preserved" `Quick test_pool_order;
    Alcotest.test_case "pool: single error re-raised" `Quick
      test_pool_single_error;
    Alcotest.test_case "pool: all errors aggregated" `Quick
      test_pool_error_aggregation;
    Alcotest.test_case "pool: bounded service" `Quick test_pool_service;
    Alcotest.test_case "pool: service error isolation" `Quick
      test_pool_service_error_isolation;
    Alcotest.test_case "replay: bit-identical stats" `Slow
      test_replay_equivalence;
    Alcotest.test_case "replay: run_benchmark rows" `Quick
      test_run_benchmark_matches_direct;
    Alcotest.test_case "sweep: jobs-independent" `Slow test_jobs_determinism;
    Alcotest.test_case "campaign: jobs-independent" `Slow
      test_campaign_jobs_determinism;
    Alcotest.test_case "deadline: fires in worker domain" `Quick
      test_deadline_in_worker_domain;
    Alcotest.test_case "deadline: zero budget disables" `Quick
      test_deadline_disabled;
  ]
