(* Timing-model tests: dual-issue pairing rules, hazards, penalties, and
   the 16-bit fetch-buffer behaviour the FITS results hinge on. *)

module P = Pf_cpu.Pipeline

let make_pipe ?config () =
  let cache =
    Pf_cache.Icache.create (Pf_cache.Icache.config ~size_bytes:16384 ())
  in
  let geometry =
    Pf_power.Geometry.of_config (Pf_cache.Icache.config ~size_bytes:16384 ())
  in
  let account = Pf_power.Account.create geometry in
  P.create ?config ~cache ~account ~fetch_data:(fun _ -> 0) ()

let issue ?(cls = P.Alu) ?(reads = 0) ?(writes = 0) ?(taken = false)
    ?(mem_words = 0) ?(size = 4) ?(backward = false) pipe addr =
  P.issue pipe ~backward ~mem_addr:(-1) ~dmisses:(-1) ~addr ~size ~cls ~reads
    ~writes ~taken ~mem_words

let no_miss_cfg = { P.sa1100 with P.miss_penalty = 0 }

let check_int = Alcotest.(check int)

(* every first access misses the cold cache; zero the penalty so cycle
   arithmetic below is about issue slots only *)

let test_dual_issue_pairs () =
  let p = make_pipe ~config:no_miss_cfg () in
  (* two independent ALU ops in consecutive words: 1 cycle *)
  issue p 0x8000 ~writes:0b0010;
  issue p 0x8004 ~reads:0b0100 ~writes:0b1000;
  check_int "paired into one cycle" 1 (P.cycles p)

let test_raw_blocks_pairing () =
  let p = make_pipe ~config:no_miss_cfg () in
  issue p 0x8000 ~writes:0b0010;
  issue p 0x8004 ~reads:0b0010;
  (* reads what the first wrote *)
  check_int "dependent pair takes two cycles" 2 (P.cycles p)

let test_two_mem_ops_no_pair () =
  let p = make_pipe ~config:no_miss_cfg () in
  issue p 0x8000 ~cls:P.Load ~writes:0b0010;
  issue p 0x8004 ~cls:P.Store ~reads:0b1000;
  check_int "single memory port" 2 (P.cycles p)

let test_load_use_bubble () =
  let p = make_pipe ~config:no_miss_cfg () in
  issue p 0x8000 ~cls:P.Load ~writes:0b0010;
  issue p 0x8004 ~reads:0b0010;
  (* 1 (load) + 1 (use) + 1 bubble *)
  check_int "load-use costs a bubble" 3 (P.cycles p)

let test_taken_branch_penalty () =
  let p = make_pipe ~config:no_miss_cfg () in
  (* forward taken: mispredicted under BTFN *)
  issue p 0x8000 ~cls:P.Branch ~taken:true;
  check_int "redirect penalty" (1 + P.sa1100.P.branch_penalty) (P.cycles p);
  (* the fetch buffer is flushed: next instruction re-accesses the cache *)
  issue p 0x8000;
  check_int "refetch after redirect" 2 (P.fetch_accesses p)

let test_not_taken_branch_cheap () =
  let p = make_pipe ~config:no_miss_cfg () in
  issue p 0x8000 ~cls:P.Branch ~taken:false;
  check_int "fall-through branch is one cycle" 1 (P.cycles p)

let test_btfn_prediction () =
  let p = make_pipe ~config:no_miss_cfg () in
  (* backward taken: predicted, no penalty beyond its issue slot *)
  issue p 0x8000 ~cls:P.Branch ~taken:true ~backward:true;
  check_int "loop branch predicted" 1 (P.cycles p);
  (* backward NOT taken: mispredicted *)
  issue p 0x8004 ~cls:P.Branch ~taken:false ~backward:true;
  check_int "loop exit mispredicted"
    (2 + P.sa1100.P.branch_penalty)
    (P.cycles p);
  (* with prediction off, every taken branch pays *)
  let p2 =
    make_pipe ~config:{ no_miss_cfg with P.predictor = P.No_prediction } ()
  in
  issue p2 0x8000 ~cls:P.Branch ~taken:true ~backward:true;
  check_int "no predictor: backward taken pays"
    (1 + P.sa1100.P.branch_penalty)
    (P.cycles p2)

let test_mul_extra () =
  let p = make_pipe ~config:no_miss_cfg () in
  issue p 0x8000 ~cls:P.Mul;
  check_int "multiply latency" (1 + P.sa1100.P.mul_extra) (P.cycles p)

let test_ldm_per_word () =
  let p = make_pipe ~config:no_miss_cfg () in
  issue p 0x8000 ~cls:P.Store ~mem_words:4;
  check_int "stm pays per extra word" 4 (P.cycles p)

let test_miss_penalty () =
  let p = make_pipe () in
  issue p 0x8000;
  (* cold miss *)
  check_int "refill stall charged"
    (1 + P.sa1100.P.miss_penalty)
    (P.cycles p);
  issue p 0x8020;
  (* next block: another miss *)
  check_int "second refill"
    (2 + (2 * P.sa1100.P.miss_penalty))
    (P.cycles p)

let test_fetch_buffer_16bit () =
  let p = make_pipe ~config:no_miss_cfg () in
  (* four 2-byte instructions spanning two 32-bit words: two accesses *)
  issue p 0x8000 ~size:2;
  issue p 0x8002 ~size:2;
  issue p 0x8004 ~size:2;
  issue p 0x8006 ~size:2;
  check_int "two fetches for four halfwords" 2 (P.fetch_accesses p);
  let p32 = make_pipe ~config:no_miss_cfg () in
  issue p32 0x8000;
  issue p32 0x8004;
  issue p32 0x8008;
  issue p32 0x800C;
  check_int "four fetches for four words" 4 (P.fetch_accesses p32)

let test_fetch_buffer_disabled () =
  let p =
    make_pipe ~config:{ no_miss_cfg with P.fetch_buffer = false } ()
  in
  issue p 0x8000 ~size:2;
  issue p 0x8002 ~size:2;
  check_int "ablation refetches every halfword" 2 (P.fetch_accesses p)

let test_single_issue_config () =
  let p = make_pipe ~config:{ no_miss_cfg with P.dual_issue = false } () in
  issue p 0x8000;
  issue p 0x8004;
  check_int "no pairing when single-issue" 2 (P.cycles p)

let test_ipc_accounting () =
  let p = make_pipe ~config:no_miss_cfg () in
  issue p 0x8000;
  issue p 0x8004 ~reads:0;
  Alcotest.(check int) "instructions" 2 (P.instructions p);
  Alcotest.(check (float 0.01)) "ipc" 2.0 (P.ipc p)

let tests =
  [
    Alcotest.test_case "dual issue pairs" `Quick test_dual_issue_pairs;
    Alcotest.test_case "RAW blocks pairing" `Quick test_raw_blocks_pairing;
    Alcotest.test_case "one memory port" `Quick test_two_mem_ops_no_pair;
    Alcotest.test_case "load-use bubble" `Quick test_load_use_bubble;
    Alcotest.test_case "taken-branch penalty" `Quick
      test_taken_branch_penalty;
    Alcotest.test_case "untaken branch" `Quick test_not_taken_branch_cheap;
    Alcotest.test_case "BTFN prediction" `Quick test_btfn_prediction;
    Alcotest.test_case "multiply latency" `Quick test_mul_extra;
    Alcotest.test_case "ldm per-word cost" `Quick test_ldm_per_word;
    Alcotest.test_case "miss penalty" `Quick test_miss_penalty;
    Alcotest.test_case "16-bit fetch buffer" `Quick test_fetch_buffer_16bit;
    Alcotest.test_case "fetch-buffer ablation" `Quick
      test_fetch_buffer_disabled;
    Alcotest.test_case "single-issue config" `Quick test_single_issue_config;
    Alcotest.test_case "IPC accounting" `Quick test_ipc_accounting;
  ]
