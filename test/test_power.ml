(* Tests for the power model: geometry scaling, accounting arithmetic,
   peak tracking, and the chip-level model. *)

module G = Pf_power.Geometry
module Acc = Pf_power.Account
module Chip = Pf_power.Chip

let geom kb =
  G.of_config (Pf_cache.Icache.config ~size_bytes:(kb * 1024) ())

let check_bool = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

let test_geometry_scaling () =
  let g16 = geom 16 and g8 = geom 8 in
  check_bool "half size ~ half gates" true
    (let ratio =
       float_of_int g8.G.gate_count /. float_of_int g16.G.gate_count
     in
     ratio > 0.45 && ratio < 0.55);
  Alcotest.(check int) "data cells exact" (16 * 1024 * 8) g16.G.data_cells;
  check_bool "tags much smaller than data" true
    (g16.G.tag_cells * 4 < g16.G.data_cells)

let params : Acc.Params.t =
  {
    Acc.Params.k_access = 10.0;
    k_output = 1.0;
    k_refill_per_bit = 2.0;
    k_internal_per_gate = 1e-4;
    k_leakage_per_gate = 1e-5;
    peak_window_insns = 4;
  }

let retire_n a n =
  for _ = 1 to n do
    Acc.on_retire a
  done

let test_accounting_linearity () =
  let a = Acc.create ~params (geom 16) in
  Acc.on_access a ~toggles:5 ~refilled_words:0;
  Acc.on_access a ~toggles:5 ~refilled_words:0;
  Acc.on_cycles a 10;
  let r = Acc.report a in
  checkf "switching = 2 * (k_access + 5)" 30.0 r.Acc.switching;
  let gates = float_of_int (geom 16).G.gate_count in
  checkf "internal = cycles * k * gates" (10.0 *. 1e-4 *. gates)
    r.Acc.internal;
  checkf "leakage = cycles * k * gates" (10.0 *. 1e-5 *. gates) r.Acc.leakage;
  checkf "total is the sum"
    (r.Acc.switching +. r.Acc.internal +. r.Acc.leakage)
    r.Acc.total;
  Alcotest.(check int) "cycles tracked" 10 r.Acc.cycles

let test_refill_energy () =
  let a = Acc.create ~params (geom 16) in
  Acc.on_access a ~toggles:0 ~refilled_words:8;
  let r = Acc.report a in
  checkf "refill charged per bit" (10.0 +. (2.0 *. 8.0 *. 32.0)) r.Acc.switching

let test_peak_exceeds_average () =
  let a = Acc.create ~params (geom 16) in
  (* one busy 4-instruction window, then two idle windows *)
  for _ = 1 to 10 do
    Acc.on_access a ~toggles:10 ~refilled_words:0
  done;
  Acc.on_cycles a 4;
  retire_n a 4;
  Acc.on_cycles a 12;
  retire_n a 8;
  let r = Acc.report a in
  let avg = Acc.avg_power r in
  check_bool "peak >= average" true (r.Acc.peak_power >= avg);
  check_bool "peak strictly above average for bursty input" true
    (r.Acc.peak_power > avg *. 1.5)

let test_peak_window_boundaries () =
  let a = Acc.create ~params (geom 16) in
  (* switching lands in the open window even before it closes *)
  Acc.on_access a ~toggles:100 ~refilled_words:0;
  Acc.on_cycles a 4;
  retire_n a 4;
  let r1 = (Acc.report a).Acc.peak_power in
  check_bool "window closed with switching included" true
    (r1 > (Acc.report a).Acc.internal /. 4.0)

let test_closed_form_equivalence () =
  (* an incremental accountant and the batch closed forms over the same
     integer counters must agree bit-for-bit — the contract the
     all-geometry sweep kernel relies on *)
  let a = Acc.create ~params (geom 8) in
  let acc = ref 0 and tog = ref 0 and rw = ref 0 and cyc = ref 0 in
  List.iter
    (fun (t, w, c) ->
      Acc.on_access a ~toggles:t ~refilled_words:w;
      incr acc;
      tog := !tog + t;
      rw := !rw + w;
      Acc.on_cycles a c;
      cyc := !cyc + c;
      Acc.on_retire a)
    [ (3, 0, 1); (15, 8, 26); (0, 0, 2); (7, 0, 1); (2, 8, 25); (9, 0, 3) ];
  let r = Acc.report a in
  let direct =
    Acc.report_of_counts ~params (geom 8) ~accesses:!acc ~toggles:!tog
      ~refill_words:!rw ~cycles:!cyc ~peak:r.Acc.peak_power
  in
  check_bool "bit-identical switching" true
    (r.Acc.switching = direct.Acc.switching);
  check_bool "bit-identical internal" true (r.Acc.internal = direct.Acc.internal);
  check_bool "bit-identical total" true (r.Acc.total = direct.Acc.total);
  (* report is read-only: a second call sees the same state *)
  check_bool "report idempotent" true (Acc.report a = r)

let baseline = { Chip.icache_energy = 270.0; cycles = 1000 }

let test_chip_model () =
  (* identical configuration: no saving *)
  checkf "baseline saves nothing" 0.0
    (Chip.chip_saving ~baseline ~icache_energy:270.0 ~cycles:1000 ());
  (* the I-cache is 27% of the chip: eliminating it entirely saves 27% *)
  checkf "cache share bounds the saving" 27.0
    (Chip.chip_saving ~baseline ~icache_energy:0.0 ~cycles:1000 ());
  (* halving cache power saves 13.5% *)
  checkf "half cache power" 13.5
    (Chip.chip_saving ~baseline ~icache_energy:135.0 ~cycles:1000 ());
  (* running 20% longer at the same cache energy: the cache's average
     power drops but the rest of the chip burns the whole time, so the
     saving is well below the half-cache-power case *)
  let slow = Chip.chip_saving ~baseline ~icache_energy:270.0 ~cycles:1200 () in
  check_bool "longer runtime caps the saving" true (slow > 0.0 && slow < 5.0);
  (* datapath deactivation adds savings beyond the cache share *)
  check_bool "deactivation bonus" true
    (Chip.chip_saving ~baseline ~icache_energy:135.0 ~cycles:1000
       ~datapath_off:0.05 ()
    > 13.5)

let test_calibration_breakdown () =
  (* the default parameters must reproduce the Figure 6(a) ARM16 shape:
     internal dominates, switching is about a third, leakage around 12% *)
  let a = Acc.create (geom 16) in
  (* emulate 1000 cycles at ~0.85 fetches/cycle with typical toggles *)
  for _ = 1 to 850 do
    Acc.on_access a ~toggles:15 ~refilled_words:0
  done;
  Acc.on_cycles a 1000;
  let r = Acc.report a in
  let share x = 100.0 *. x /. r.Acc.total in
  check_bool "switching ~ a third" true
    (share r.Acc.switching > 25.0 && share r.Acc.switching < 42.0);
  check_bool "internal > half-ish" true
    (share r.Acc.internal > 45.0 && share r.Acc.internal < 65.0);
  check_bool "leakage ~ a tenth" true
    (share r.Acc.leakage > 8.0 && share r.Acc.leakage < 18.0)

let prop_energy_monotone =
  QCheck.Test.make ~name:"energy accumulates monotonically" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 50)
           (pair (int_bound 32) (int_bound 10))))
    (fun events ->
      let a = Acc.create ~params (geom 8) in
      let previous = ref 0.0 in
      List.for_all
        (fun (toggles, cycles) ->
          Acc.on_access a ~toggles ~refilled_words:0;
          Acc.on_cycles a cycles;
          let t = (Acc.report a).Acc.total in
          let ok = t >= !previous in
          previous := t;
          ok)
        events)

let tests =
  [
    Alcotest.test_case "geometry scales with size" `Quick
      test_geometry_scaling;
    Alcotest.test_case "accounting linearity" `Quick test_accounting_linearity;
    Alcotest.test_case "refill energy" `Quick test_refill_energy;
    Alcotest.test_case "peak exceeds average" `Quick test_peak_exceeds_average;
    Alcotest.test_case "peak window switching" `Quick
      test_peak_window_boundaries;
    Alcotest.test_case "closed-form equivalence" `Quick
      test_closed_form_equivalence;
    Alcotest.test_case "chip-level model" `Quick test_chip_model;
    Alcotest.test_case "default calibration shape" `Quick
      test_calibration_breakdown;
    QCheck_alcotest.to_alcotest prop_energy_monotone;
  ]
