(* Differential testing with random programs.

   A generator produces small, always-terminating KIR programs with
   arithmetic, shifts, comparisons, memory traffic, conditionals, bounded
   loops and helper calls.  Every generated program is run three ways —
   reference evaluator, compiled ARM simulation, FITS-synthesized 16-bit
   simulation — and all three printed outputs must agree exactly.  This is
   the deepest invariant in the repository: instruction selection, linking,
   literal pools, unrolling, ISA synthesis, fallback expansion and the
   programmable-decoder semantics all sit under it. *)

open Pf_kir.Ast

let vars = [ "x"; "y"; "z"; "w" ]

let interesting_consts =
  [ 0; 1; 2; 7; 15; 16; 31; 255; 256; 4095; 0xFFFF; 0x10000; 0x12345678;
    0x7FFFFFFF; 0x80000000; 0xFFFFFFFF; -1; -256 ]

let gen_const =
  QCheck.Gen.oneof
    [
      QCheck.Gen.oneofl interesting_consts;
      QCheck.Gen.int_bound 1000;
      QCheck.Gen.map (fun x -> x land 0xFFFFFFFF) QCheck.Gen.int;
    ]

let gen_var = QCheck.Gen.oneofl vars

(* depth-bounded expression generator; all memory addresses are masked
   into the global arrays so no access can fault.  [allow_call] is off
   inside the helper's own body — a helper that calls itself would never
   terminate. *)
let rec gen_expr ?(allow_call = true) depth st =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun c -> Int c) gen_const; map (fun x -> Var x) gen_var ]
  in
  if depth = 0 then leaf st
  else
    let sub = gen_expr ~allow_call (depth - 1) in
    let binops =
      [ Add; Sub; Mul; Div; Rem; Udiv; Urem; And; Or; Xor; Shl; Shr; Sar ]
    in
    let cmps = [ Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge ] in
    let gens =
      [
        leaf;
        map3 (fun op a b -> Binop (op, a, b)) (oneofl binops) sub sub;
        map3 (fun op a b -> Cmp (op, a, b)) (oneofl cmps) sub sub;
        map (fun a -> Unop (Neg, a)) sub;
        map (fun a -> Unop (Bnot, a)) sub;
        (* masked word load from g[0..31] *)
        map
          (fun idx ->
            Load
              { scale = W32; signed = false;
                addr =
                  Binop
                    ( Add,
                      Global_addr "g",
                      Binop (Shl, Binop (And, idx, Int 31), Int 2) ) })
          sub;
        (* masked byte load from gb[0..63], signed or not *)
        map2
          (fun idx signed ->
            Load
              { scale = W8; signed;
                addr = Binop (Add, Global_addr "gb", Binop (And, idx, Int 63))
              })
          sub bool;
      ]
      @ (if allow_call then
           [ map2
               (fun a b -> Call ("helper", [ a; b; Var "z"; Var "w" ]))
               sub sub ]
         else [])
    in
    oneof gens st

let rec gen_stmt depth st =
  let open QCheck.Gen in
  let expr = gen_expr 2 in
  let simple =
    oneof
      [
        map2 (fun x e -> Assign (x, e)) gen_var expr;
        map2
          (fun idx value ->
            Store
              { scale = W32;
                addr =
                  Binop
                    ( Add,
                      Global_addr "g",
                      Binop (Shl, Binop (And, idx, Int 31), Int 2) );
                value })
          expr expr;
        map2
          (fun idx value ->
            Store
              { scale = W8;
                addr = Binop (Add, Global_addr "gb", Binop (And, idx, Int 63));
                value })
          expr expr;
        map (fun e -> Print_int e) expr;
      ]
  in
  if depth = 0 then simple st
  else
    let block n = list_size (int_range 1 n) (gen_stmt (depth - 1)) in
    oneof
      [
        simple;
        map3 (fun c t e -> If (c, t, e)) expr (block 3) (block 2);
        (* bounded loop; the induction name is unique per nesting depth —
           nested loops sharing one name would reset each other forever *)
        map2
          (fun trips body ->
            For ("k" ^ string_of_int depth, Int 0, Int trips, body))
          (int_range 1 8) (block 3);
      ]
      st

let gen_program =
  let open QCheck.Gen in
  let* helper_body = gen_expr ~allow_call:false 2 in
  let* stmts = list_size (int_range 3 10) (gen_stmt 2) in
  let inits = List.map (fun x -> Let (x, Int 0)) vars in
  let final_prints =
    List.map (fun x -> Print_int (Var x)) vars
    @ [
        (* order-sensitive checksum of the word array *)
        Let ("sum", Int 0);
        For
          ( "fin",
            Int 0,
            Int 32,
            [
              Assign
                ( "sum",
                  Binop
                    ( Xor,
                      Binop (Mul, Var "sum", Int 31),
                      Load
                        { scale = W32; signed = false;
                          addr =
                            Binop
                              ( Add,
                                Global_addr "g",
                                Binop (Shl, Var "fin", Int 2) ) } ) );
            ] );
        Print_int (Var "sum");
      ]
  in
  return
    {
      globals =
        [
          { gname = "g"; gscale = W32; length = 32; init = None };
          { gname = "gb"; gscale = W8; length = 64;
            init = Some (Array.init 64 (fun k -> (k * 37) land 0xFF)) };
        ];
      funcs =
        [
          { name = "helper"; params = vars;
            body = [ Return (Some helper_body) ] };
          { name = "main"; params = []; body = inits @ stmts @ final_prints };
        ];
    }

let arbitrary_program =
  QCheck.make gen_program
    ~print:(fun p ->
      Printf.sprintf "<program with %d main statements>"
        (List.length (List.nth p.funcs 1).body))

let run_all_ways ?(unroll = 1) p =
  (* generated programs are tiny; a tight budget turns any accidental
     divergence into a fast failure instead of a hang *)
  let expected = (Pf_kir.Eval.run ~max_steps:2_000_000 p).Pf_kir.Eval.output in
  let image = Pf_armgen.Compile.program ~unroll p in
  let dyn_counts, arm_out =
    Pf_fits.Synthesis.dyn_counts_of_run ~max_steps:20_000_000 image
  in
  if arm_out <> expected then
    QCheck.Test.fail_reportf "ARM output differs:\n eval: %S\n arm:  %S"
      expected arm_out;
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let fits = Pf_fits.Run.run ~max_steps:20_000_000 tr in
  if fits.Pf_fits.Run.output <> expected then
    QCheck.Test.fail_reportf "FITS output differs:\n eval: %S\n fits: %S"
      expected fits.Pf_fits.Run.output;
  (tr, fits)

let prop_differential =
  QCheck.Test.make ~name:"random program: eval = ARM = FITS" ~count:60
    arbitrary_program
    (fun p ->
      ignore (run_all_ways p);
      true)

let prop_differential_unrolled =
  QCheck.Test.make ~name:"random program survives unrolling" ~count:25
    arbitrary_program
    (fun p ->
      ignore (run_all_ways ~unroll:4 p);
      true)

let prop_mapping_sane =
  QCheck.Test.make ~name:"mapping statistics stay in range" ~count:25
    arbitrary_program
    (fun p ->
      let tr, fits = run_all_ways p in
      let s = Pf_fits.Translate.static_mapping_rate tr in
      let d = fits.Pf_fits.Run.dyn_one_to_one_pct in
      s >= 0.0 && s <= 100.0 && d >= 0.0 && d <= 100.0
      && tr.Pf_fits.Translate.stats.Pf_fits.Translate.fits_insns
         >= tr.Pf_fits.Translate.stats.Pf_fits.Translate.arm_insns)

let prop_code_always_smaller =
  QCheck.Test.make ~name:"FITS code never larger than ARM code" ~count:25
    arbitrary_program
    (fun p ->
      let tr, _ = run_all_ways p in
      tr.Pf_fits.Translate.stats.Pf_fits.Translate.code_bytes_fits
      <= tr.Pf_fits.Translate.stats.Pf_fits.Translate.code_bytes_arm)

let prop_spec_wellformed =
  QCheck.Test.make ~name:"synthesized specs stay within capacity" ~count:25
    arbitrary_program
    (fun p ->
      let image = Pf_armgen.Compile.program p in
      let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
      let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
      let spec = syn.Pf_fits.Synthesis.spec in
      let slots = Hashtbl.create 64 in
      Array.iter
        (fun (od : Pf_fits.Spec.opdef) ->
          let key = (od.Pf_fits.Spec.group, od.Pf_fits.Spec.sub) in
          if Hashtbl.mem slots key then
            QCheck.Test.fail_reportf "duplicate encoding slot %d.%d"
              (fst key) (snd key);
          Hashtbl.add slots key ())
        spec.Pf_fits.Spec.ops;
      spec.Pf_fits.Spec.groups_used <= Pf_fits.Spec.max_groups
      && Array.length spec.Pf_fits.Spec.dict <= Pf_fits.Spec.dict_capacity)

(* The execution-engine invariant under adversarial inputs: every random
   program run by all three engines must produce the SAME result record —
   instructions, cycles, every power float — and a step cutoff landing
   anywhere (including mid basic block) must stop each engine at exactly
   the same retired instruction: identical structured error, identical
   recorded trace prefix.  This is what licenses defaulting harness,
   bench and CLI to the compiled engine. *)
let engines =
  [
    Pf_cpu.Arm_run.Reference;
    Pf_cpu.Arm_run.Predecoded;
    Pf_cpu.Arm_run.Compiled;
  ]

let trace_sig t =
  let b = Buffer.create 4096 in
  Pf_cpu.Trace.iter t (fun addr meta -> Printf.bprintf b "%x.%x;" addr meta);
  (Pf_cpu.Trace.length t, Digest.string (Buffer.contents b))

let check_all_equal what = function
  | [] | [ _ ] -> ()
  | x :: rest ->
      List.iteri
        (fun i y ->
          if y <> x then
            QCheck.Test.fail_reportf "%s: engine %d diverges from reference"
              what (i + 1))
        rest

let prop_engines_agree =
  QCheck.Test.make
    ~name:"three engines bit-identical, incl. mid-block max-steps cutoffs"
    ~count:20
    QCheck.(pair arbitrary_program (int_range 0 1_000_000))
    (fun (p, salt) ->
      let image = Pf_armgen.Compile.program p in
      let arm_full =
        List.map
          (fun e -> Pf_cpu.Arm_run.run ~engine:e ~max_steps:20_000_000 image)
          engines
      in
      check_all_equal "ARM full-run result" arm_full;
      (* a budget strictly inside the run: every engine must trip the
         watchdog after exactly the same retired prefix *)
      let arm_cut =
        let total = (List.hd arm_full).Pf_cpu.Arm_run.instructions in
        let cut = 1 + (salt mod max 1 (total - 1)) in
        List.map
          (fun e ->
            let trace = Pf_cpu.Trace.create ~isize:4 () in
            let out =
              Pf_util.Sim_error.protect ~where:"test" (fun () ->
                  ignore
                    (Pf_cpu.Arm_run.run ~engine:e ~max_steps:cut ~trace image))
            in
            (match out with
            | Error e when e.Pf_util.Sim_error.kind
                           = Pf_util.Sim_error.Watchdog_timeout -> ()
            | Error e ->
                QCheck.Test.fail_reportf "ARM cutoff raised %s"
                  (Pf_util.Sim_error.to_string e)
            | Ok () ->
                QCheck.Test.fail_reportf
                  "ARM cutoff at %d of %d did not trip" cut total);
            ( (match out with Error e -> e.Pf_util.Sim_error.detail | Ok () -> ""),
              trace_sig trace ))
          engines
      in
      check_all_equal "ARM cutoff (error, trace prefix)" arm_cut;
      (* same invariant on the FITS side, through synthesis + translation *)
      let dyn_counts, _ =
        Pf_fits.Synthesis.dyn_counts_of_run ~max_steps:20_000_000 image
      in
      let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
      let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
      let fits_full =
        List.map
          (fun e -> Pf_fits.Run.run ~engine:e ~max_steps:20_000_000 tr)
          engines
      in
      check_all_equal "FITS full-run result" fits_full;
      let fits_cut =
        let total = (List.hd fits_full).Pf_fits.Run.fits_instructions in
        let cut = 1 + (salt mod max 1 (total - 1)) in
        List.map
          (fun e ->
            let trace = Pf_cpu.Trace.create ~isize:2 () in
            let out =
              Pf_util.Sim_error.protect ~where:"test" (fun () ->
                  ignore (Pf_fits.Run.run ~engine:e ~max_steps:cut ~trace tr))
            in
            (match out with
            | Error e when e.Pf_util.Sim_error.kind
                           = Pf_util.Sim_error.Watchdog_timeout -> ()
            | Error e ->
                QCheck.Test.fail_reportf "FITS cutoff raised %s"
                  (Pf_util.Sim_error.to_string e)
            | Ok () ->
                QCheck.Test.fail_reportf
                  "FITS cutoff at %d of %d did not trip" cut total);
            ( (match out with Error e -> e.Pf_util.Sim_error.detail | Ok () -> ""),
              trace_sig trace ))
          engines
      in
      check_all_equal "FITS cutoff (error, trace prefix)" fits_cut;
      true)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_differential;
    QCheck_alcotest.to_alcotest prop_engines_agree;
    QCheck_alcotest.to_alcotest prop_differential_unrolled;
    QCheck_alcotest.to_alcotest prop_mapping_sane;
    QCheck_alcotest.to_alcotest prop_code_always_smaller;
    QCheck_alcotest.to_alcotest prop_spec_wellformed;
  ]
