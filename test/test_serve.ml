(* Serve-stack tests: CRC/atomic-write foundations, the record codec's
   corruption detection (QCheck: every single-byte flip and truncation is
   refused), store persistence and recovery, the store-fault campaign,
   protocol round trips, the degradation ladder, and an end-to-end
   in-process daemon (cached replies bit-identical to computed ones,
   recovery across restart, backpressure). *)

module SE = Pf_util.Sim_error
module AF = Pf_util.Atomic_file
module J = Pf_serve.Json
module Store = Pf_serve.Store
module Proto = Pf_serve.Proto
module Service = Pf_serve.Service
module Inflight = Pf_serve.Inflight

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tmpdir =
  let counter = ref 0 in
  fun label ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pf-serve-test-%d-%s-%d" (Unix.getpid ()) label !counter)
    in
    dir

(* ---- crc32 ---- *)

let test_crc32 () =
  (* the standard check value *)
  check_bool "crc32 of '123456789'" true
    (Pf_util.Crc32.string "123456789" = 0xCBF43926);
  check_bool "crc32 of empty" true (Pf_util.Crc32.string "" = 0);
  (* incremental = one-shot *)
  let s = "the quick brown fox jumps over the lazy dog" in
  let split =
    Pf_util.Crc32.update (Pf_util.Crc32.update 0 s 0 10) s 10
      (String.length s - 10)
  in
  check_bool "incremental matches one-shot" true
    (split = Pf_util.Crc32.string s)

(* ---- atomic_file ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_atomic_write () =
  let dir = tmpdir "atomic" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "out.txt" in
  AF.write ~fsync:false ~path "first";
  check_string "first write lands" "first" (read_file path);
  AF.write ~fsync:false ~path "second";
  check_string "overwrite replaces" "second" (read_file path);
  check_bool "no temp residue" true
    (Sys.readdir dir |> Array.to_list
    |> List.for_all (fun n -> not (AF.is_temp n)))

let test_atomic_crash_points () =
  let dir = tmpdir "crash" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "out.txt" in
  AF.write ~fsync:false ~path "committed";
  List.iter
    (fun point ->
      let crashed =
        match
          AF.write ~fsync:false ~crash:(fun p -> p = point) ~path "replacement"
        with
        | () -> false
        | exception AF.Crash p -> p = point
      in
      check_bool (AF.crash_point_name point ^ " raises Crash") true crashed;
      let expected =
        match point with
        | AF.Mid_write | AF.After_write | AF.Before_rename -> "committed"
        | AF.After_rename -> "replacement"
      in
      check_string
        (AF.crash_point_name point ^ " leaves whole old or whole new")
        expected (read_file path);
      (* restore the baseline for the next point *)
      AF.write ~fsync:false ~path "committed")
    AF.all_crash_points;
  (* torn temp files from the crashes are recognizable *)
  let temps =
    Sys.readdir dir |> Array.to_list |> List.filter AF.is_temp
  in
  check_bool "mid/after-write crashes left temp files" true
    (List.length temps >= 2)

(* ---- json ---- *)

let test_json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Int 0;
      J.Int (-123456789);
      J.Float 1.5;
      J.Float 1e-17;
      J.String "";
      J.String "with \"quotes\" and \\ and \n tab \t done";
      J.String "\x01\x1f control bytes";
      J.List [ J.Int 1; J.String "two"; J.Null ];
      J.Obj
        [
          ("a", J.Int 1);
          ("nested", J.Obj [ ("xs", J.List [ J.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = J.to_string v in
      match J.of_string s with
      | Ok v' ->
          check_string ("roundtrip " ^ s) s (J.to_string v');
          check_bool ("value equal " ^ s) true (v = v')
      | Error msg -> Alcotest.failf "reparse of %s failed: %s" s msg)
    cases;
  (* malformed inputs error, never raise *)
  List.iter
    (fun bad -> check_bool ("rejects " ^ bad) true (Result.is_error (J.of_string bad)))
    [ "{"; "[1,"; "\"unterminated"; "01x"; "{\"a\" 1}"; "[1] trailing"; "" ]

let test_kir_codec_roundtrip () =
  (* every benchmark program in the registry round-trips *)
  List.iter
    (fun (b : Pf_mibench.Registry.benchmark) ->
      let p = b.Pf_mibench.Registry.program ~scale:1 in
      let j = Pf_serve.Kir_codec.to_json p in
      let p' = Pf_serve.Kir_codec.of_json j in
      check_bool (b.Pf_mibench.Registry.name ^ " roundtrips") true (p = p');
      check_string
        (b.Pf_mibench.Registry.name ^ " digest stable")
        (Pf_serve.Kir_codec.digest p)
        (Pf_serve.Kir_codec.digest p'))
    Pf_mibench.Registry.all

(* ---- record codec properties ---- *)

let record_gen =
  QCheck.Gen.(
    pair (string_size ~gen:char (int_range 1 80))
      (string_size ~gen:char (int_range 0 400)))

let prop_record_roundtrip =
  QCheck.Test.make ~name:"store record: encode/decode roundtrip" ~count:200
    (QCheck.make record_gen) (fun (key, payload) ->
      Store.decode_record (Store.encode_record ~key payload)
      = Ok (key, payload))

let prop_record_flip_detected =
  (* any single-byte corruption anywhere in the record is refused *)
  QCheck.Test.make ~name:"store record: any byte flip detected" ~count:200
    (QCheck.make
       QCheck.Gen.(triple record_gen (int_bound 10_000) (int_range 1 255)))
    (fun ((key, payload), pos, delta) ->
      let rec_ = Store.encode_record ~key payload in
      let pos = pos mod String.length rec_ in
      let b = Bytes.of_string rec_ in
      Bytes.set b pos
        (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xFF));
      Result.is_error (Store.decode_record (Bytes.to_string b)))

let prop_record_truncation_detected =
  QCheck.Test.make ~name:"store record: any truncation detected" ~count:200
    (QCheck.make QCheck.Gen.(pair record_gen (int_bound 10_000)))
    (fun ((key, payload), cut) ->
      let rec_ = Store.encode_record ~key payload in
      let keep = cut mod String.length rec_ in
      Result.is_error
        (Store.decode_record (String.sub rec_ 0 keep)))

(* ---- store ---- *)

let test_store_basic () =
  let dir = tmpdir "store" in
  let store, recovery = Store.open_ ~fsync:false dir in
  check_int "fresh store is empty" 0 recovery.Store.entries;
  check_bool "miss on empty" true (Store.get store ~key:"nope" = None);
  Store.put store ~key:"k1" "payload-one";
  Store.put store ~key:"k2" "payload-two";
  check_bool "get back" true (Store.get store ~key:"k1" = Some "payload-one");
  Store.put store ~key:"k1" "payload-one-v2";
  check_bool "overwrite" true
    (Store.get store ~key:"k1" = Some "payload-one-v2");
  check_int "count" 2 (Store.count store);
  Store.close store;
  (* persistence across reopen *)
  let store2, recovery2 = Store.open_ ~fsync:false dir in
  check_int "reopen sees both" 2 recovery2.Store.entries;
  check_int "reopen quarantines nothing" 0 recovery2.Store.recovered_quarantined;
  check_bool "persisted" true
    (Store.get store2 ~key:"k1" = Some "payload-one-v2");
  Store.close store2

let test_store_quarantine () =
  let dir = tmpdir "quarantine" in
  let store, _ = Store.open_ ~fsync:false dir in
  Store.put store ~key:"good" "good-payload";
  Store.put store ~key:"victim" "victim-payload";
  Store.close store;
  (* damage the victim in place *)
  let victim_path =
    Filename.concat (Filename.concat dir "objects")
      (Store.key_hash "victim" ^ ".rec")
  in
  let bytes = Bytes.of_string (read_file victim_path) in
  let pos = Bytes.length bytes / 2 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x10));
  let oc = open_out_bin victim_path in
  output_bytes oc bytes;
  close_out oc;
  let quarantine_lines = ref [] in
  let store2, recovery =
    Store.open_ ~fsync:false ~log:(fun l -> quarantine_lines := l :: !quarantine_lines) dir
  in
  check_int "recovery quarantined the damaged record" 1
    recovery.Store.recovered_quarantined;
  check_int "good record survives" 1 recovery.Store.entries;
  check_bool "damaged record never served" true
    (Store.get store2 ~key:"victim" = None);
  check_bool "good record still served" true
    (Store.get store2 ~key:"good" = Some "good-payload");
  check_bool "quarantine logged" true
    (List.exists
       (fun l ->
         let frag = "quarantined=1" in
         let rec find i =
           i + String.length frag <= String.length l
           && (String.sub l i (String.length frag) = frag || find (i + 1))
         in
         find 0)
       !quarantine_lines);
  check_bool "quarantine dir holds the bytes" true
    (Sys.readdir (Filename.concat dir "quarantine") |> Array.length |> ( <> ) 0);
  Store.close store2

let test_storefault_campaign () =
  let dir = tmpdir "campaign" in
  let r = Pf_fault.Storefault.run ~committed:4 ~flips_per_record:8 ~dir ~seed:11 () in
  check_int "every trial survives"
    r.Pf_fault.Storefault.total r.Pf_fault.Storefault.survived;
  check_int "all four crash points covered" 4 r.Pf_fault.Storefault.crash_points;
  check_bool "corruption trials ran" true (r.Pf_fault.Storefault.corruptions >= 13)

(* ---- retry ---- *)

let test_retry () =
  (* transient failures retry until success *)
  let tries = ref 0 in
  let v =
    Pf_serve.Retry.with_backoff
      ~policy:{ Pf_serve.Retry.attempts = 5; base_delay_s = 0.001; max_delay_s = 0.002 }
      ~where:"test" (fun () ->
        incr tries;
        if !tries < 3 then raise (Unix.Unix_error (Unix.EINTR, "test", ""))
        else 42)
  in
  check_int "succeeds on third try" 3 !tries;
  check_int "returns the value" 42 v;
  (* non-transient failures propagate immediately *)
  let tries = ref 0 in
  let raised =
    match
      Pf_serve.Retry.with_backoff ~where:"test" (fun () ->
          incr tries;
          failwith "permanent")
    with
    | _ -> false
    | exception Failure _ -> true
  in
  check_bool "non-transient propagates" true raised;
  check_int "no retry for non-transient" 1 !tries;
  (* exhaustion becomes a structured error *)
  let raised =
    match
      Pf_serve.Retry.with_backoff
        ~policy:{ Pf_serve.Retry.attempts = 2; base_delay_s = 0.001; max_delay_s = 0.002 }
        ~where:"test" (fun () -> raise (Unix.Unix_error (Unix.EAGAIN, "t", "")))
    with
    | _ -> None
    | exception SE.Error e -> Some e.SE.kind
  in
  check_bool "exhaustion is structured Internal" true (raised = Some SE.Internal)

(* ---- protocol round trips ---- *)

let test_proto_roundtrip () =
  let inline_program =
    (Pf_mibench.Registry.find_exn "crc32").Pf_mibench.Registry.program ~scale:1
  in
  let requests =
    [
      Proto.default_request;
      {
        Proto.default_request with
        Proto.action = Proto.Synthesize;
        program = Proto.Named "sha";
        isa = Proto.Fits;
        weighting = Pf_multi.Weighting.Uniform;
        dict_budget = Some 96;
        scale = 4;
        unroll = Some 2;
        max_steps = Some 1_000_000;
        budget_s = Some 2.5;
        no_cache = true;
      };
      {
        Proto.default_request with
        Proto.action = Proto.Explore_point;
        program = Proto.Inline inline_program;
        geometry = Pf_dse.Space.cache_8k;
      };
    ]
  in
  List.iter
    (fun r ->
      let j = Proto.request_to_json r in
      let r' = Proto.request_of_json j in
      check_bool "request roundtrips" true (r = r');
      (* and through actual bytes *)
      match J.of_string (J.to_string j) with
      | Ok j' -> check_bool "request json bytes roundtrip" true (Proto.request_of_json j' = r)
      | Error m -> Alcotest.fail m)
    requests;
  let responses =
    [
      Proto.Ok_reply
        { result = J.Obj [ ("x", J.Int 1) ]; cached = true; degraded = false };
      Proto.Error_reply
        {
          SE.kind = SE.Watchdog_timeout;
          where = "serve.test";
          detail = "budget";
          backtrace = None;
        };
      Proto.Overloaded { depth = 3; capacity = 2 };
    ]
  in
  List.iter
    (fun r ->
      check_bool "response roundtrips" true
        (Proto.response_of_json (Proto.response_to_json r) = r))
    responses

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close a; Unix.close b)
    (fun () ->
      Proto.write_frame a "hello frame";
      Proto.write_frame a "";
      check_bool "first frame" true (Proto.read_frame b = Some "hello frame");
      check_bool "empty frame" true (Proto.read_frame b = Some ""))

(* ---- service semantics ---- *)

let test_cache_keys () =
  let named =
    { Proto.default_request with Proto.program = Proto.Named "crc32" }
  in
  let inline_same =
    {
      Proto.default_request with
      Proto.program =
        Proto.Inline
          ((Pf_mibench.Registry.find_exn "crc32").Pf_mibench.Registry.program
             ~scale:1);
      (* the registry compiles crc32 with its own unroll; the inline
         spelling must pin it to share the key *)
      unroll = Some (Pf_mibench.Registry.find_exn "crc32").Pf_mibench.Registry.unroll;
    }
  in
  check_string "name and identical inline program share a key"
    (Service.cache_key named)
    (Service.cache_key inline_same);
  let other_geom =
    { named with Proto.geometry = Pf_dse.Space.cache_8k }
  in
  check_bool "evaluate key depends on geometry" true
    (Service.cache_key named <> Service.cache_key other_geom);
  let synth g =
    Service.cache_key
      { named with Proto.action = Proto.Synthesize; geometry = g }
  in
  check_string "synthesize key ignores geometry"
    (synth Pf_dse.Space.cache_16k) (synth Pf_dse.Space.cache_8k);
  check_bool "isa changes the evaluate key" true
    (Service.cache_key named
    <> Service.cache_key { named with Proto.isa = Proto.Fits });
  check_bool "status has no key" true
    (Result.is_error
       (SE.protect ~where:"t" (fun () ->
            Service.cache_key { named with Proto.action = Proto.Status })))

let test_compute_matches_direct () =
  (* the service's arm evaluate must report exactly what a direct run
     reports *)
  let req =
    { Proto.default_request with Proto.program = Proto.Named "bitcount" }
  in
  match Service.compute req with
  | Error e -> Alcotest.fail (SE.to_string e)
  | Ok (result, degraded) ->
      check_bool "not degraded" false degraded;
      let b = Pf_mibench.Registry.find_exn "bitcount" in
      let image =
        Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll
          (b.Pf_mibench.Registry.program ~scale:1)
      in
      let direct = Pf_cpu.Arm_run.run ~cache_cfg:Pf_dse.Space.cache_16k image in
      let got name =
        match Option.bind (J.member name result) J.to_int_opt with
        | Some v -> v
        | None -> Alcotest.failf "missing %s" name
      in
      check_int "instructions" direct.Pf_cpu.Arm_run.instructions
        (got "instructions");
      check_int "cycles" direct.Pf_cpu.Arm_run.cycles (got "cycles");
      check_int "cache_misses" direct.Pf_cpu.Arm_run.cache_misses
        (got "cache_misses");
      check_bool "output digested" true
        (Option.bind (J.member "output_md5" result) J.to_string_opt
        = Some (Digest.to_hex (Digest.string direct.Pf_cpu.Arm_run.output)))

let test_handle_cached_bit_identical () =
  let dir = tmpdir "svc-store" in
  let store, _ = Store.open_ ~fsync:false dir in
  let req =
    { Proto.default_request with Proto.program = Proto.Named "crc32" }
  in
  let first = Service.handle ~store req in
  let second = Service.handle ~store req in
  (match (first, second) with
  | ( Proto.Ok_reply { result = r1; cached = c1; _ },
      Proto.Ok_reply { result = r2; cached = c2; _ } ) ->
      check_bool "first is computed" false c1;
      check_bool "second is cached" true c2;
      check_string "cached reply bit-identical to computed"
        (J.to_string r1) (J.to_string r2)
  | _ -> Alcotest.fail "expected two ok replies");
  (* no_cache bypasses but computes the same bytes *)
  (match Service.handle ~store { req with Proto.no_cache = true } with
  | Proto.Ok_reply { cached; result; _ } ->
      check_bool "no_cache recomputes" false cached;
      (match first with
      | Proto.Ok_reply { result = r1; _ } ->
          check_string "recompute deterministic" (J.to_string r1)
            (J.to_string result)
      | _ -> ())
  | _ -> Alcotest.fail "expected ok");
  Store.close store

let test_degraded_half_scale () =
  (* pick a step budget that scale 1 fits but scale 4 does not: the
     ladder must degrade 4 -> 2 -> 1 and succeed with the flag set *)
  let b = Pf_mibench.Registry.find_exn "crc32" in
  let image s =
    Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll
      (b.Pf_mibench.Registry.program ~scale:s)
  in
  let steps s = (Pf_cpu.Arm_run.run (image s)).Pf_cpu.Arm_run.instructions in
  let s1 = steps 1 and s4 = steps 4 in
  check_bool "scale grows the workload" true (s4 > s1 + 2);
  let budget = s1 + ((s4 - s1) / 8) in
  let req =
    {
      Proto.default_request with
      Proto.program = Proto.Named "crc32";
      scale = 4;
      max_steps = Some budget;
    }
  in
  (match Service.compute req with
  | Ok (_, degraded) -> check_bool "degraded flag set" true degraded
  | Error e -> Alcotest.failf "expected degradation, got %s" (SE.to_string e));
  (* inline programs cannot degrade: the timeout surfaces *)
  let inline_req =
    {
      req with
      Proto.program = Proto.Inline (b.Pf_mibench.Registry.program ~scale:4);
      unroll = Some b.Pf_mibench.Registry.unroll;
    }
  in
  match Service.compute inline_req with
  | Error { SE.kind = SE.Watchdog_timeout; _ } -> ()
  | Ok _ -> Alcotest.fail "inline request should not degrade"
  | Error e -> Alcotest.failf "wrong error %s" (SE.to_string e)

let test_envelope_roundtrip () =
  let result = J.Obj [ ("cycles", J.Int 123); ("ipc", J.Float 0.75) ] in
  let r, d = Service.of_envelope (Service.envelope ~degraded:true result) in
  check_bool "degraded preserved" true d;
  check_string "result preserved" (J.to_string result) (J.to_string r)

(* ---- in-flight coalescing ---- *)

let test_inflight_coalescing () =
  (* deterministic interleaving via a gate the leader blocks on: the
     leader is provably inside its computation when the follower
     arrives, and the follower is provably blocked before the gate
     opens — no sleeps standing in for synchronization *)
  let t : string Inflight.t = Inflight.create () in
  let gate_m = Mutex.create () and gate_c = Condition.create () in
  let entered = ref false and release = ref false in
  let await cond =
    Mutex.lock gate_m;
    while not (cond ()) do
      Condition.wait gate_c gate_m
    done;
    Mutex.unlock gate_m
  in
  let signal flag =
    Mutex.lock gate_m;
    flag := true;
    Condition.broadcast gate_c;
    Mutex.unlock gate_m
  in
  let leader =
    Domain.spawn (fun () ->
        Inflight.run t ~key:"k" (fun () ->
            signal entered;
            await (fun () -> !release);
            "leader-result"))
  in
  await (fun () -> !entered);
  (* the leader is inside its computation; a same-key arrival must join *)
  let follower_ran = Atomic.make false in
  let follower =
    Domain.spawn (fun () ->
        Inflight.run t ~key:"k" (fun () ->
            Atomic.set follower_ran true;
            "follower-result"))
  in
  (* wait until the follower is provably blocked on the leader *)
  let deadline = Unix.gettimeofday () +. 10. in
  while Inflight.waiting t < 1 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  check_int "one follower blocked" 1 (Inflight.waiting t);
  (* an unrelated key is not serialized behind it *)
  (match Inflight.run t ~key:"other" (fun () -> "o") with
  | Inflight.Led v -> check_string "other key leads" "o" v
  | Inflight.Joined _ -> Alcotest.fail "unrelated key must not join");
  signal release;
  let lr = Domain.join leader and fr = Domain.join follower in
  (match lr with
  | Inflight.Led v -> check_string "leader computed" "leader-result" v
  | Inflight.Joined _ -> Alcotest.fail "leader must lead");
  (match fr with
  | Inflight.Joined v ->
      check_string "follower shares the leader's result" "leader-result" v
  | Inflight.Led _ -> Alcotest.fail "follower must join, not recompute");
  check_bool "follower's closure never ran" false (Atomic.get follower_ran);
  check_int "one computation avoided" 1 (Inflight.coalesced t);
  check_int "table drained" 0 (Inflight.pending t);
  check_int "no waiters left" 0 (Inflight.waiting t);
  (* after publication the key is gone: a late arrival leads afresh *)
  match Inflight.run t ~key:"k" (fun () -> "fresh") with
  | Inflight.Led v -> check_string "late arrival leads" "fresh" v
  | Inflight.Joined _ -> Alcotest.fail "late arrival must not join"

let test_handle_with_inflight () =
  (* sequential requests through the coalescing path behave exactly as
     without it: compute then cache hit, nothing coalesced *)
  let dir = tmpdir "svc-inflight" in
  let store, _ = Store.open_ ~fsync:false dir in
  let inflight : Proto.response Inflight.t = Inflight.create () in
  let req =
    { Proto.default_request with Proto.program = Proto.Named "crc32" }
  in
  let first = Service.handle ~store ~inflight req in
  let second = Service.handle ~store ~inflight req in
  (match (first, second) with
  | ( Proto.Ok_reply { result = r1; cached = c1; _ },
      Proto.Ok_reply { result = r2; cached = c2; _ } ) ->
      check_bool "first computed" false c1;
      check_bool "second cached" true c2;
      check_string "same bytes" (J.to_string r1) (J.to_string r2)
  | _ -> Alcotest.fail "expected two ok replies");
  check_int "sequential requests never coalesce" 0 (Inflight.coalesced inflight);
  check_int "nothing left in flight" 0 (Inflight.pending inflight);
  Store.close store

(* ---- daemon end to end ---- *)

let with_daemon ?(jobs = 2) ?(queue_capacity = 64) ?store_dir f =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pf-test-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let cfg =
    {
      Pf_serve.Daemon.default_config with
      Pf_serve.Daemon.socket_path = sock;
      store_dir;
      jobs;
      queue_capacity;
      fsync = false;
    }
  in
  let logs = ref [] in
  let logm = Mutex.create () in
  let log l =
    Mutex.lock logm;
    logs := l :: !logs;
    Mutex.unlock logm
  in
  let d = Domain.spawn (fun () -> Pf_serve.Daemon.run ~log cfg) in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Pf_serve.Client.shutdown ~socket:sock ()) with _ -> ());
      Domain.join d)
    (fun () -> f sock)

let test_daemon_end_to_end () =
  let store_dir = tmpdir "daemon-store" in
  let req =
    { Proto.default_request with Proto.program = Proto.Named "bitcount" }
  in
  let first =
    with_daemon ~store_dir (fun sock ->
        let first = Pf_serve.Client.request ~socket:sock req in
        let second = Pf_serve.Client.request ~socket:sock req in
        (match (first, second) with
        | ( Proto.Ok_reply { result = r1; cached = false; _ },
            Proto.Ok_reply { result = r2; cached = true; _ } ) ->
            check_string "daemon cached reply bit-identical"
              (J.to_string r1) (J.to_string r2)
        | _ -> Alcotest.fail "expected computed then cached");
        (* status sees the traffic *)
        (match Pf_serve.Client.status ~socket:sock () with
        | Proto.Ok_reply { result; _ } ->
            check_bool "status counts a hit" true
              (Option.bind (J.member "cache_hits" result) J.to_int_opt
              = Some 1)
        | _ -> Alcotest.fail "status failed");
        first)
  in
  (* restart on the same store: the entry survives the daemon *)
  with_daemon ~store_dir (fun sock ->
      match (Pf_serve.Client.request ~socket:sock req, first) with
      | ( Proto.Ok_reply { result = r2; cached = true; _ },
          Proto.Ok_reply { result = r1; _ } ) ->
          check_string "cache survives daemon restart" (J.to_string r1)
            (J.to_string r2)
      | _ -> Alcotest.fail "expected a cached reply after restart")

let test_daemon_error_isolation () =
  with_daemon (fun sock ->
      (* unknown benchmark: structured error reply, daemon stays up *)
      (match
         Pf_serve.Client.request ~socket:sock
           { Proto.default_request with Proto.program = Proto.Named "nope" }
       with
      | Proto.Error_reply e ->
          check_bool "invalid-config kind" true (e.SE.kind = SE.Invalid_config)
      | _ -> Alcotest.fail "expected error reply");
      (* tiny budget: watchdog error reply *)
      (match
         Pf_serve.Client.request ~socket:sock
           { Proto.default_request with Proto.budget_s = Some 1e-9 }
       with
      | Proto.Error_reply e ->
          check_bool "watchdog kind" true (e.SE.kind = SE.Watchdog_timeout)
      | _ -> Alcotest.fail "expected watchdog reply");
      (* and the daemon still answers *)
      match Pf_serve.Client.request ~socket:sock Proto.default_request with
      | Proto.Ok_reply _ -> ()
      | _ -> Alcotest.fail "daemon should survive bad requests")

let test_daemon_backpressure () =
  (* one worker, queue of one, six slow requests at once: at least one
     must be refused with a structured overloaded reply, none may error *)
  with_daemon ~jobs:1 ~queue_capacity:1 (fun sock ->
      let req =
        {
          Proto.default_request with
          Proto.action = Proto.Explore_point;
          program = Proto.Named "sha";
          no_cache = true;
        }
      in
      let replies =
        Pf_util.Pool.map ~jobs:6
          (fun _ -> Pf_serve.Client.request ~socket:sock req)
          (List.init 6 Fun.id)
      in
      let ok =
        List.length
          (List.filter (function Proto.Ok_reply _ -> true | _ -> false) replies)
      in
      let overloaded =
        List.length
          (List.filter
             (function Proto.Overloaded _ -> true | _ -> false)
             replies)
      in
      check_int "every request answered" 6 (ok + overloaded);
      check_bool "backpressure engaged" true (overloaded >= 1);
      check_bool "some work completed" true (ok >= 1))

let test_loadgen_against_daemon () =
  let store_dir = tmpdir "loadgen-store" in
  with_daemon ~store_dir (fun sock ->
      let r =
        Pf_serve.Loadgen.run ~benchmarks:[ "crc32"; "bitcount" ] ~socket:sock
          ~requests:40 ~conns:3 ~seed:5 ()
      in
      check_int "every request accounted" 40
        (r.Pf_serve.Loadgen.ok + r.Pf_serve.Loadgen.errors
        + r.Pf_serve.Loadgen.overloaded);
      check_int "no errors" 0 r.Pf_serve.Loadgen.errors;
      check_int "no refusals at this load" 0 r.Pf_serve.Loadgen.overloaded;
      check_bool "corpus is small so the cache gets hits" true
        (r.Pf_serve.Loadgen.cached > 0);
      check_bool "hit rate consistent" true
        (r.Pf_serve.Loadgen.hit_rate > 0.
        && r.Pf_serve.Loadgen.hit_rate <= 1.);
      (* 40 draws from a 14-key corpus: most requests are re-touches, and
         only those feed the warm percentiles *)
      check_bool "warm subset is proper and non-empty" true
        (r.Pf_serve.Loadgen.warm_requests > 0
        && r.Pf_serve.Loadgen.warm_requests < r.Pf_serve.Loadgen.requests);
      check_bool "warm percentiles populated" true
        (r.Pf_serve.Loadgen.warm_p50_ms >= 0.
        && r.Pf_serve.Loadgen.warm_p50_ms <= r.Pf_serve.Loadgen.warm_p99_ms))

let test_trace_sharing () =
  (* two explore points on the same program but different geometries:
     the second must reuse the first's recording and still produce
     exactly what an unshared compute produces *)
  let traces = Pf_serve.Trace_share.create () in
  let point geometry =
    {
      Proto.default_request with
      Proto.action = Proto.Explore_point;
      program = Proto.Named "crc32";
      geometry;
    }
  in
  let run req =
    match Service.compute ~traces req with
    | Ok (result, _) -> result
    | Error e -> Alcotest.fail (SE.to_string e)
  in
  let shared result =
    match Option.bind (J.member "trace_shared" result) J.to_bool_opt with
    | Some b -> b
    | None -> Alcotest.fail "missing trace_shared"
  in
  let r16 = run (point Pf_dse.Space.cache_16k) in
  let r8 = run (point Pf_dse.Space.cache_8k) in
  check_bool "first point records" false (shared r16);
  check_bool "second point shares" true (shared r8);
  let shd, rcd, ent = Pf_serve.Trace_share.stats traces in
  check_int "one share" 1 shd;
  check_int "one recording" 1 rcd;
  check_int "one entry" 1 ent;
  (* bit-identical to a compute with no sharing, apart from the flag *)
  let member name r =
    match J.member name r with
    | Some j -> J.to_string j
    | None -> Alcotest.failf "missing %s" name
  in
  (match Service.compute (point Pf_dse.Space.cache_8k) with
  | Error e -> Alcotest.fail (SE.to_string e)
  | Ok (fresh, _) ->
      check_bool "unshared compute does not share" false (shared fresh);
      List.iter
        (fun name ->
          check_string (name ^ " identical under sharing") (member name fresh)
            (member name r8))
        [ "points"; "replayed_events"; "outputs_consistent" ]);
  (* a different dict budget is a different recording *)
  let r_dict =
    run { (point Pf_dse.Space.cache_16k) with Proto.dict_budget = Some 96 }
  in
  check_bool "dict budget splits the key" false (shared r_dict);
  let shd, rcd, ent = Pf_serve.Trace_share.stats traces in
  check_int "still one share" 1 shd;
  check_int "two recordings" 2 rcd;
  check_int "two entries" 2 ent

let tests =
  [
    Alcotest.test_case "crc32: known vectors" `Quick test_crc32;
    Alcotest.test_case "atomic: write/overwrite" `Quick test_atomic_write;
    Alcotest.test_case "atomic: crash-point matrix" `Quick
      test_atomic_crash_points;
    Alcotest.test_case "json: roundtrip + malformed" `Quick test_json_roundtrip;
    Alcotest.test_case "kir codec: suite roundtrip" `Quick
      test_kir_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_record_roundtrip;
    QCheck_alcotest.to_alcotest prop_record_flip_detected;
    QCheck_alcotest.to_alcotest prop_record_truncation_detected;
    Alcotest.test_case "store: put/get/persist" `Quick test_store_basic;
    Alcotest.test_case "store: corrupt record quarantined" `Quick
      test_store_quarantine;
    Alcotest.test_case "storefault: campaign survives" `Slow
      test_storefault_campaign;
    Alcotest.test_case "retry: transient vs permanent" `Quick test_retry;
    Alcotest.test_case "proto: request/response roundtrip" `Quick
      test_proto_roundtrip;
    Alcotest.test_case "proto: framing" `Quick test_frame_roundtrip;
    Alcotest.test_case "service: cache keys" `Quick test_cache_keys;
    Alcotest.test_case "service: matches direct run" `Quick
      test_compute_matches_direct;
    Alcotest.test_case "service: cached reply bit-identical" `Quick
      test_handle_cached_bit_identical;
    Alcotest.test_case "service: half-scale degradation" `Slow
      test_degraded_half_scale;
    Alcotest.test_case "inflight: second waiter blocks on first result"
      `Quick test_inflight_coalescing;
    Alcotest.test_case "service: coalescing path is transparent" `Quick
      test_handle_with_inflight;
    Alcotest.test_case "service: envelope roundtrip" `Quick
      test_envelope_roundtrip;
    Alcotest.test_case "daemon: end to end + restart" `Slow
      test_daemon_end_to_end;
    Alcotest.test_case "daemon: error isolation" `Slow
      test_daemon_error_isolation;
    Alcotest.test_case "daemon: backpressure" `Slow test_daemon_backpressure;
    Alcotest.test_case "daemon: loadgen run" `Slow test_loadgen_against_daemon;
    Alcotest.test_case "service: trace sharing across geometries" `Quick
      test_trace_sharing;
  ]
