(* Workload generation: determinism, validity, termination, calibration
   closeness, phase detection, population campaign jobs-independence and
   decoder reload accounting. *)

let model = Pf_workgen.Calibrate.reference ()

let gen ~seed ~index = Pf_workgen.Generate.program ~model ~seed ~index

(* arbitrary over (seed, index) pairs *)
let seed_index =
  QCheck.make
    ~print:(fun (s, i) -> Printf.sprintf "seed=%d index=%d" s i)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_bound 2_000))

let prop_same_seed_identical =
  QCheck.Test.make ~name:"workgen: same seed => byte-identical program"
    ~count:30 seed_index (fun (seed, index) ->
      let a = Pf_workgen.Generate.render (gen ~seed ~index) in
      let b = Pf_workgen.Generate.render (gen ~seed ~index) in
      a = b)

let prop_valid_and_terminates =
  QCheck.Test.make
    ~name:"workgen: generated programs validate, run, and agree" ~count:25
    seed_index (fun (seed, index) ->
      let p = gen ~seed ~index in
      Pf_kir.Validate.check_exn p;
      let ev = Pf_kir.Eval.run ~max_steps:50_000_000 p in
      let image = Pf_armgen.Compile.program p in
      let out = Pf_armgen.Compile.run ~max_steps:50_000_000 image in
      if ev.Pf_kir.Eval.output <> out then
        QCheck.Test.fail_reportf
          "eval/compiled outputs differ: %S vs %S" ev.Pf_kir.Eval.output out;
      if String.length out = 0 then
        QCheck.Test.fail_reportf "generated program printed nothing";
      true)

let calibration_within_tolerance () =
  let n = 150 in
  let feats =
    List.init n (fun index ->
        Pf_workgen.Calibrate.features_of_program (gen ~seed:7 ~index))
  in
  let merged = Pf_workgen.Calibrate.merge_all feats in
  let d = Pf_workgen.Calibrate.max_distance ~reference:model merged in
  if d > Pf_workgen.Calibrate.tolerance then
    Alcotest.failf "calibration drift %.4f > tolerance %.2f:\n%s" d
      Pf_workgen.Calibrate.tolerance
      (Pf_workgen.Calibrate.report ~reference:model merged)

let reference_envelope_sane () =
  let r = model in
  Alcotest.(check int) "21 benchmarks" 21 r.Pf_workgen.Calibrate.programs;
  (* every dimension of the envelope observed something *)
  Array.iter
    (fun (d : Pf_workgen.Calibrate.dim) ->
      let total = Array.fold_left ( + ) 0 d.counts in
      if total = 0 then Alcotest.failf "empty reference dimension %s" d.dname)
    r.Pf_workgen.Calibrate.dims

(* ---- phase detection ---- *)

let mix_a = [| 0.6; 0.0; 0.2; 0.1; 0.05; 0.05; 0.0 |]
let mix_b = [| 0.2; 0.0; 0.5; 0.2; 0.05; 0.05; 0.0 |]

let phase_two_phases () =
  (* ten windows of A then ten of B: exactly one confirmed boundary *)
  let mixes = Array.init 20 (fun i -> if i < 10 then mix_a else mix_b) in
  let seg = Pf_workgen.Phase.segment mixes in
  Alcotest.(check (list int)) "boundary where B starts" [ 10 ]
    seg.Pf_workgen.Phase.boundaries;
  Alcotest.(check (list (pair int int)))
    "extents" [ (0, 10); (10, 20) ]
    (Pf_workgen.Phase.phases seg ~n:20)

let phase_blip_ignored () =
  (* a single outlier window never confirms: hysteresis absorbs it *)
  let mixes = Array.init 20 (fun i -> if i = 7 then mix_b else mix_a) in
  let seg = Pf_workgen.Phase.segment mixes in
  Alcotest.(check (list int)) "no boundary" []
    seg.Pf_workgen.Phase.boundaries;
  Alcotest.(check (list (pair int int)))
    "one phase" [ (0, 20) ]
    (Pf_workgen.Phase.phases seg ~n:20)

let phase_boundary_at_arming_window () =
  (* confirm=2: drift arms at window 10, confirms at 11, and the
     boundary lands where the drift first armed, not where it confirmed *)
  let mixes = Array.init 14 (fun i -> if i < 10 then mix_a else mix_b) in
  let seg =
    Pf_workgen.Phase.segment
      ~config:{ Pf_workgen.Phase.enter = 0.35; exit_ = 0.2; confirm = 2 }
      mixes
  in
  Alcotest.(check (list int)) "boundary at arming window" [ 10 ]
    seg.Pf_workgen.Phase.boundaries

let mix_of_profile_normalized () =
  let p = gen ~seed:3 ~index:0 in
  let image = Pf_armgen.Compile.program p in
  let trace = Pf_cpu.Trace.create ~isize:4 () in
  let _ =
    Pf_cpu.Arm_run.run ~max_steps:50_000_000
      ~cache_cfg:Pf_harness.Experiment.cache_16k ~trace image
  in
  let counts =
    Pf_cpu.Trace.exec_counts trace ~base:image.Pf_arm.Image.code_base
      ~n:(Array.length image.Pf_arm.Image.words)
  in
  let profile = Pf_fits.Profile.of_image_counts image ~counts in
  let mix = Pf_workgen.Phase.mix_of_profile profile in
  let sum = Array.fold_left ( +. ) 0. mix in
  Alcotest.(check (float 1e-9)) "normalized" 1.0 sum;
  Array.iter (fun x -> Alcotest.(check bool) "non-negative" true (x >= 0.)) mix

(* ---- decoder reload accounting ---- *)

let translate_reload_accounting () =
  (* translating a program under a foreign spec appends the dictionary
     entries and register lists the spec lacks; the reload cost is the
     bit size of exactly those appended rows *)
  let prep name =
    let p =
      (Pf_mibench.Registry.find name).Pf_mibench.Registry.program ~scale:1
    in
    let image = Pf_armgen.Compile.program p in
    let trace = Pf_cpu.Trace.create ~isize:4 () in
    let _ =
      Pf_cpu.Arm_run.run ~max_steps:200_000_000
        ~cache_cfg:Pf_harness.Experiment.cache_16k ~trace image
    in
    let counts =
      Pf_cpu.Trace.exec_counts trace ~base:image.Pf_arm.Image.code_base
        ~n:(Array.length image.Pf_arm.Image.words)
    in
    (image, counts)
  in
  let image_c, counts_c = prep "crc32" in
  let image_b, counts_b = prep "bitcount" in
  let own =
    (Pf_fits.Synthesis.synthesize image_c ~dyn_counts:counts_c)
      .Pf_fits.Synthesis.spec
  in
  let foreign =
    (Pf_fits.Synthesis.synthesize image_b ~dyn_counts:counts_b)
      .Pf_fits.Synthesis.spec
  in
  let tr_own = Pf_fits.Translate.translate own image_c in
  let r = tr_own.Pf_fits.Translate.reload in
  Alcotest.(check int) "own spec: nothing appended" 0
    r.Pf_fits.Translate.reload_bits;
  let tr = Pf_fits.Translate.translate foreign image_c in
  let r = tr.Pf_fits.Translate.reload in
  Alcotest.(check bool) "foreign spec appends dict entries" true
    (r.Pf_fits.Translate.dict_appended > 0);
  Alcotest.(check int) "reload bits = 32/dict + 16/reglist"
    ((32 * r.Pf_fits.Translate.dict_appended)
    + (16 * r.Pf_fits.Translate.reglists_appended))
    r.Pf_fits.Translate.reload_bits;
  Alcotest.(check int) "data_plane_bits matches table sizes"
    ((32 * Array.length foreign.Pf_fits.Spec.dict)
    + (16 * Array.length foreign.Pf_fits.Spec.reglists))
    (Pf_fits.Translate.data_plane_bits foreign)

(* ---- population campaign ---- *)

let population_jobs_independent () =
  let run jobs =
    Pf_workgen.Population.run ~jobs ~count:10 ~seed:11 ()
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check string) "digest" a.Pf_workgen.Population.digest
    b.Pf_workgen.Population.digest;
  Alcotest.(check string) "full report"
    (Pf_workgen.Population.report a)
    (Pf_workgen.Population.report b)

let population_rows_sane () =
  let r = Pf_workgen.Population.run ~jobs:2 ~count:12 ~seed:5 () in
  Alcotest.(check int) "all rows evaluated" 12
    (List.length r.Pf_workgen.Population.rows);
  Alcotest.(check (list (pair int string))) "no failures" []
    r.Pf_workgen.Population.failures;
  List.iter
    (fun (row : Pf_workgen.Population.row) ->
      Alcotest.(check bool) "outputs reproduced" true row.r_output_ok;
      Alcotest.(check bool) "per-app saving positive" true
        (row.r_per_app_saving > 0.);
      Alcotest.(check (float 1e-9)) "degradation = perapp - shared"
        (row.r_per_app_saving -. row.r_shared_saving)
        row.r_degradation_pp)
    r.Pf_workgen.Population.rows

let population_adaptive_smoke () =
  let r =
    Pf_workgen.Population.run ~jobs:2 ~adaptive:true ~count:16 ~seed:42 ()
  in
  match r.Pf_workgen.Population.adaptive_r with
  | None -> Alcotest.fail "adaptive requested but absent"
  | Some a ->
      Alcotest.(check bool) "at least one phase" true
        (List.length a.Pf_workgen.Population.a_phases >= 1);
      Alcotest.(check bool) "static energy positive" true
        (a.Pf_workgen.Population.a_static_energy > 0.);
      Alcotest.(check bool) "adaptive energy positive" true
        (a.Pf_workgen.Population.a_adaptive_energy > 0.);
      Alcotest.(check bool) "static reload bits charged" true
        (a.Pf_workgen.Population.a_static_reload_bits > 0);
      Alcotest.(check bool) "adaptive reload bits charged" true
        (a.Pf_workgen.Population.a_adaptive_reload_bits > 0)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_same_seed_identical;
    QCheck_alcotest.to_alcotest prop_valid_and_terminates;
    Alcotest.test_case "reference envelope sane" `Quick
      reference_envelope_sane;
    Alcotest.test_case "calibration within tolerance" `Slow
      calibration_within_tolerance;
    Alcotest.test_case "phase: two phases, one boundary" `Quick
      phase_two_phases;
    Alcotest.test_case "phase: single-window blip ignored" `Quick
      phase_blip_ignored;
    Alcotest.test_case "phase: boundary at arming window" `Quick
      phase_boundary_at_arming_window;
    Alcotest.test_case "phase: profile mix normalized" `Quick
      mix_of_profile_normalized;
    Alcotest.test_case "translate: reload accounting" `Quick
      translate_reload_accounting;
    Alcotest.test_case "population: jobs-independent" `Slow
      population_jobs_independent;
    Alcotest.test_case "population: rows sane" `Quick population_rows_sane;
    Alcotest.test_case "population: adaptive smoke" `Slow
      population_adaptive_smoke;
  ]
