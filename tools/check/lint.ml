(* Source lint for the library tree.

   Every failure path in lib/ must go through Pf_util.Sim_error so callers
   (the experiment harness, the fault campaigns, the CLI) can classify and
   isolate it.  A bare [failwith] or [assert false] bypasses that contract:
   it surfaces as an anonymous Failure/Assert_failure with no kind, no
   location tag, and no exit-code mapping.  This lint fails the build when
   one sneaks back in.

   Signal-based watchdogs ([Sys.signal], [Unix.setitimer]/ITIMER) are
   forbidden in lib/ for a different reason: POSIX delivers signals to the
   main domain only, so they silently stop working inside Pool worker
   domains.  Wall-clock budgets must use the monotonic Pf_util.Deadline,
   which any domain can poll.

   Deliberate exceptions go in [allowlist] as (path-suffix, line-substring)
   pairs with a justification comment.

   Allocation discipline is NOT a lint: whether a step loop allocates is a
   property of the generated code (tuple returns, closure captures, boxed
   optional arguments, float stores into mixed records), not of any
   greppable source pattern.  The guard for it is behavioural —
   test/test_alloc.ml measures [Gc.minor_words] deltas over ~100k-step
   runs of the ARM and FITS predecoded engines and fails if a per-step
   allocation creeps back in.  Keep that test in sync when adding fields
   to the hot structs in lib/arm/pexec.ml or lib/cpu/pipeline.ml. *)

let allowlist : (string * string) list =
  [ (* currently empty: lib/ is fully converted to Sim_error *) ]

let sim_error_reason =
  "raise a structured Pf_util.Sim_error instead (or extend the lint \
   allowlist with a justification)"

let domain_safe_reason =
  "signals only reach the main domain; use the monotonic Pf_util.Deadline \
   watchdog, which works inside Pool worker domains"

(* Everything random in lib/ must flow from explicit seeded state
   (Pf_util.Rng): the population digests, the workload generator, the
   fault campaigns and the loadgen plans all promise bit-identical
   replay from a seed, and one stray draw from stdlib Random's global,
   per-domain state silently breaks that for every jobs count. *)
let seeded_rng_reason =
  "unseeded global RNG; thread explicit Pf_util.Rng state from a seed so \
   results replay bit-identically at any --jobs"

let forbidden =
  [
    ("failwith", sim_error_reason);
    ("assert false", sim_error_reason);
    ("Sys.signal", domain_safe_reason);
    ("Sys.set_signal", domain_safe_reason);
    ("setitimer", domain_safe_reason);
    ("ITIMER", domain_safe_reason);
    ("Random.self_init", seeded_rng_reason);
    ("Random.int", seeded_rng_reason);
    ("Random.bits", seeded_rng_reason);
    ("Random.float", seeded_rng_reason);
  ]

(* Tree-scoped rules: (path substring, pattern, reason).  The serve
   stack promises crash safety — every byte it persists must flow
   through Pf_util.Atomic_file (temp + rename + CRC), so a bare
   [open_out] would reintroduce torn writes; and a daemon library must
   never [exit], it reports structured errors and lets bin/ decide the
   process's fate (the injected-crash hook exits from bin/powerfits.ml
   for exactly that reason). *)
let scoped_forbidden =
  [
    ( "lib/serve/",
      "open_out",
      "persist through Pf_util.Atomic_file — bare open_out can tear on crash"
    );
    ( "lib/serve/",
      "exit ",
      "lib/serve must not terminate the process; return a structured error \
       and let bin/ decide" );
  ]
  (* The multicore machine is an INTERLEAVING simulator, not a threaded
     program: determinism (bit-identical runs per scheduler seed, at any
     --jobs) holds only because exactly one core advances per slice on a
     single domain.  Spawning real domains or threads inside lib/mc
     would reintroduce host-machine nondeterminism into the very layer
     whose job is to model concurrency deterministically.  Fan-out
     across seeds/configs goes through Pf_util.Pool, outside the
     machine.  Mutexes are banned for the same reason: nothing in lib/mc
     may need one — shared state is owned by the single-domain machine
     loop, and a Mutex would be a smell that real parallelism leaked
     in. *)
  @ List.concat_map
      (fun pat ->
        [
          ( "lib/mc/",
            pat,
            "lib/mc is a single-domain interleaving engine; one core \
             advances per Sched slice, so runs replay bit-identically \
             from a seed.  Parallelize across machines with \
             Pf_util.Pool, never inside one" );
        ])
      [ "Domain.spawn"; "Thread.create"; "Mutex."; "Condition." ]
  (* The block-compilation engine (basic-block discovery in bexec, the
     block-dispatch driver in cexec) stakes its correctness on closures
     whose captured micro-op arrays the type checker has fully vetted —
     an [Obj.magic] there would let a representation confusion ride into
     every engine and corrupt the bit-identity contract silently.
     Legality failures must fall back to the interpreter via the typed
     fallback path, never "fix" a type with a cast. *)
  @ List.concat_map
      (fun scope ->
        [
          ( scope,
            "Obj.magic",
            "the compiled engine must stay representation-honest; make the \
             block illegal and fall back to the interpreter instead" );
          ( scope,
            "Obj.repr",
            "the compiled engine must stay representation-honest; make the \
             block illegal and fall back to the interpreter instead" );
        ])
      [ "lib/arm/bexec"; "lib/cpu/cexec" ]

let allowed file line =
  List.exists
    (fun (suffix, sub) ->
      Filename.check_suffix file suffix
      && String.length sub <= String.length line
      &&
      let n = String.length sub and m = String.length line in
      let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
      go 0)
    allowlist

let has_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let rec source_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then source_files path
         else if
           Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
         then [ path ]
         else [])

(* Every module under lib/ must publish an interface: a missing .mli
   exposes every helper and invites callers to depend on internals the
   module never promised (it also silences the unused-value warnings an
   interface would raise).  The multi-program subsystem was added under
   this rule; keep it that way. *)
let check_interfaces root files violations =
  List.iter
    (fun file ->
      if
        Filename.check_suffix file ".ml"
        && not (Sys.file_exists (Filename.concat root (file ^ "i")))
      then begin
        Printf.eprintf
          "%s: no interface — every module under lib/ needs a .mli\n" file;
        incr violations
      end)
    files

let () =
  let root =
    (* run from the repo root or from anywhere inside _build *)
    if Sys.file_exists "lib" then "."
    else if Sys.file_exists "../../lib" then "../.."
    else (
      prerr_endline "lint: cannot locate the lib/ tree";
      exit 2)
  in
  let violations = ref 0 in
  check_interfaces root (source_files (Filename.concat root "lib")) violations;
  List.iter
    (fun file ->
      let ic = open_in (Filename.concat root file) in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           List.iter
             (fun (pat, reason) ->
               if has_sub ~sub:pat line && not (allowed file line) then begin
                 Printf.eprintf "%s:%d: `%s' in lib/ — %s\n" file !lineno pat
                   reason;
                 incr violations
               end)
             forbidden;
           List.iter
             (fun (scope, pat, reason) ->
               if
                 has_sub ~sub:scope file && has_sub ~sub:pat line
                 && not (allowed file line)
               then begin
                 Printf.eprintf "%s:%d: `%s' in %s — %s\n" file !lineno pat
                   scope reason;
                 incr violations
               end)
             scoped_forbidden
         done
       with End_of_file -> ());
      close_in ic)
    (source_files (Filename.concat root "lib"));
  if !violations > 0 then begin
    Printf.eprintf "lint: %d violation(s)\n" !violations;
    exit 1
  end
  else print_endline "lint: lib/ error-handling and interface discipline OK"
