let () =
  let t0 = Unix.gettimeofday () in
  let sweep = Pf_harness.Experiment.run_all () in
  Printf.printf "ran %d of %d benchmarks in %.1fs\n%!"
    sweep.Pf_harness.Experiment.completed sweep.Pf_harness.Experiment.total
    (Unix.gettimeofday () -. t0);
  print_endline (Pf_harness.Experiment.banner sweep);
  let all = Pf_harness.Experiment.completed_results sweep in
  List.iter
    (fun (r : Pf_harness.Experiment.bench_result) ->
      if not r.Pf_harness.Experiment.outputs_consistent then
        Printf.printf "INCONSISTENT OUTPUT: %s\n" r.Pf_harness.Experiment.name)
    all;
  let power = Pf_harness.Experiment.power_rows all in
  List.iter
    (fun f -> print_endline (Pf_harness.Figures.render f))
    (Pf_harness.Figures.mapping_figures all
    @ Pf_harness.Figures.power_figures power)
