#!/bin/sh
# One-command CI gate: lint, build, full test suite, and the throughput
# regression check against the committed sweep baseline.
#
#   ./tools/ci.sh
#
# Exits non-zero on the first failing stage.  The bench check compares a
# fresh sequential sweep against BENCH_sweep.json and fails on a >15%
# throughput regression; it needs a quiet machine to be meaningful, so it
# runs last — everything correctness-related has already passed by then.
set -e
cd "$(dirname "$0")/.."

echo "== lint =="
dune build tools/check/lint.exe
./_build/default/tools/check/lint.exe

echo "== build =="
dune build

echo "== test =="
dune runtest

echo "== engine differential: reference vs predecoded vs compiled =="
# The run reports are fully deterministic (no wall-clock in them), so the
# three engines must print byte-identical bytes — instructions, cycles,
# misses, every power figure, program output — for both ISAs.
ENG_DIR=$(mktemp -d)
for eng in reference predecoded compiled; do
  dune exec bin/powerfits.exe -- run --benchmarks crc32,sha,qsort \
    --engine "$eng" >"$ENG_DIR/$eng.out"
done
cmp -s "$ENG_DIR/reference.out" "$ENG_DIR/predecoded.out" || {
  echo "ci: predecoded engine diverges from reference"; exit 1; }
cmp -s "$ENG_DIR/reference.out" "$ENG_DIR/compiled.out" || {
  echo "ci: compiled engine diverges from reference"; exit 1; }
rm -rf "$ENG_DIR"

echo "== explore smoke grid =="
dune exec bin/powerfits.exe -- explore --grid smoke --benchmarks crc32,sha \
  --jobs 2

echo "== explore dense grid: sweep engine vs replay oracle =="
# The dense grid (1058 geometries) picks the single-pass sweep engine;
# --cross-check re-evaluates the paper-point geometries with the replay
# engine and exits 5 unless every shared point is bit-identical.
dune exec bin/powerfits.exe -- explore --grid dense --benchmarks crc32,sha \
  --engine sweep --cross-check --jobs 2

echo "== serve smoke: crash recovery =="
# Start a daemon armed to die (exit 42) mid-write on its second store
# write, drive it until it crashes, then restart on the same store and
# prove: (a) the committed first entry is served as a cache hit, (b) the
# torn temp file is swept, (c) a hand-corrupted record is quarantined —
# never served — and recomputed.
SERVE_DIR=$(mktemp -d)
SOCK="$SERVE_DIR/pf.sock"
STORE="$SERVE_DIR/store"
dune build bin/powerfits.exe tools/loadgen.exe
PF=./_build/default/bin/powerfits.exe
LOADGEN=./_build/default/tools/loadgen.exe
# the client's connect backoff covers ~0.1s; give the daemon however
# long it needs to bind before driving it
wait_for_sock() {
  i=0
  while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i+1)); done
  [ -S "$SOCK" ] || { echo "ci: daemon never bound $SOCK"; exit 1; }
}

"$PF" serve --socket "$SOCK" --store "$STORE" \
  --jobs 2 --no-fsync --crash-at 2:mid-write >"$SERVE_DIR/crash.log" 2>&1 &
SERVE_PID=$!
wait_for_sock
# two distinct requests: the second store write trips the injected crash
set +e
"$LOADGEN" --socket "$SOCK" --requests 8 --conns 1 \
  --benchmarks crc32,bitcount >/dev/null 2>&1
wait $SERVE_PID
SERVE_STATUS=$?
set -e
[ "$SERVE_STATUS" -eq 42 ] || {
  echo "ci: expected injected crash exit 42, got $SERVE_STATUS"; cat "$SERVE_DIR/crash.log"; exit 1; }
ls "$STORE"/objects/*.tmp.* >/dev/null 2>&1 || {
  echo "ci: mid-write crash left no torn temp file"; exit 1; }

# corrupt the one committed record so recovery must quarantine it: chop
# the trailing CRC byte — any truncation is detected by construction
REC=$(ls "$STORE"/objects/*.rec | head -n1)
truncate -s -1 "$REC"
# the crashed daemon left its socket file behind; clear it so
# wait_for_sock sees the NEW daemon's bind, not the stale inode
rm -f "$SOCK"

"$PF" serve --socket "$SOCK" --store "$STORE" \
  --jobs 2 --no-fsync --max-requests 12 >"$SERVE_DIR/recover.log" 2>&1 &
SERVE_PID=$!
wait_for_sock
"$LOADGEN" --socket "$SOCK" --requests 12 --conns 2 \
  --benchmarks crc32,bitcount
wait $SERVE_PID
grep -q "quarantined=1" "$SERVE_DIR/recover.log" || {
  echo "ci: recovery did not quarantine the corrupted record"; cat "$SERVE_DIR/recover.log"; exit 1; }
grep -q "swept_temps=1" "$SERVE_DIR/recover.log" || {
  echo "ci: recovery did not sweep the torn temp file"; cat "$SERVE_DIR/recover.log"; exit 1; }
rm -rf "$SERVE_DIR"

echo "== serve smoke: store-fault campaign =="
FAULT_DIR=$(mktemp -d)
dune exec bin/powerfits.exe -- serve --selftest "$FAULT_DIR"
rm -rf "$FAULT_DIR"

echo "== population smoke: seeded run, jobs-independent digest =="
# A 64-program campaign at two jobs counts: the stdout report (digest,
# calibration, distribution, every table) must be byte-identical — the
# population promise is bit-exact replay from (count, seed) alone.
POP_DIR=$(mktemp -d)
"$PF" population --count 64 --seed 42 --jobs 1 >"$POP_DIR/j1.out"
"$PF" population --count 64 --seed 42 --jobs 3 >"$POP_DIR/j3.out"
cmp -s "$POP_DIR/j1.out" "$POP_DIR/j3.out" || {
  echo "ci: population report differs between --jobs 1 and --jobs 3"; exit 1; }
grep -q "population digest: " "$POP_DIR/j1.out" || {
  echo "ci: population report lacks a digest line"; exit 1; }
rm -rf "$POP_DIR"

echo "== multicore litmus smoke: weak-memory outcomes under seed sweep =="
# Every litmus test (SB, MP, LB, CoWW, CoRR, fenced SB, IRIW) runs across
# a seeded interleaving sweep; any outcome outside the operational model's
# allowed set makes the CLI exit 3, and the summary line must report zero
# forbidden outcomes.  Two sweeps with different seeds-counts also guard
# the histogram's jobs-independence at the CLI level.
MC_DIR=$(mktemp -d)
"$PF" mc --litmus --seeds 200 --jobs 2 >"$MC_DIR/litmus.out"
grep -q "forbidden=0" "$MC_DIR/litmus.out" || {
  echo "ci: litmus sweep reported forbidden outcomes"; cat "$MC_DIR/litmus.out"; exit 1; }
"$PF" mc --litmus --test mp --sched rr --seeds 1 >"$MC_DIR/rr.out"
grep -q "forbidden=0" "$MC_DIR/rr.out" || {
  echo "ci: round-robin MP litmus reported forbidden outcomes"; exit 1; }
rm -rf "$MC_DIR"

echo "== bench regression check =="
dune exec bench/main.exe -- --check BENCH_sweep.json

echo "ci: all gates passed"
