#!/bin/sh
# One-command CI gate: lint, build, full test suite, and the throughput
# regression check against the committed sweep baseline.
#
#   ./tools/ci.sh
#
# Exits non-zero on the first failing stage.  The bench check compares a
# fresh sequential sweep against BENCH_sweep.json and fails on a >15%
# throughput regression; it needs a quiet machine to be meaningful, so it
# runs last — everything correctness-related has already passed by then.
set -e
cd "$(dirname "$0")/.."

echo "== lint =="
dune build tools/check/lint.exe
./_build/default/tools/check/lint.exe

echo "== build =="
dune build

echo "== test =="
dune runtest

echo "== explore smoke grid =="
dune exec bin/powerfits.exe -- explore --grid smoke --benchmarks crc32,sha \
  --jobs 2

echo "== bench regression check =="
dune exec bench/main.exe -- --check BENCH_sweep.json

echo "ci: all gates passed"
