(* loadgen — drive a running `powerfits serve` daemon with thousands of
   deterministic requests and report throughput, cache hit rate and
   latency percentiles.

     dune exec tools/loadgen.exe -- --socket /tmp/pf.sock \
       --requests 1000 --conns 4 --json loadgen.json

   Exit codes: 0 all requests answered (ok or overloaded — backpressure
   is the daemon working as designed), 4 if any request errored, 2 usage. *)

let usage =
  "loadgen --socket PATH [--requests N] [--conns N] [--seed N]\n\
  \        [--benchmarks A,B,C] [--corpus generated:N:SEED] [--json PATH]"

(* --corpus generated:N:SEED — N workgen programs, shipped inline *)
let parse_corpus s =
  match String.split_on_char ':' s with
  | [ "generated"; n; seed ] -> (
      match (int_of_string_opt n, int_of_string_opt seed) with
      | Some n, Some seed when n >= 1 ->
          let model = Pf_workgen.Calibrate.reference () in
          List.init n (fun index -> Pf_workgen.Generate.program ~model ~seed ~index)
      | _ ->
          Printf.eprintf "loadgen: bad --corpus %S (want generated:N:SEED)\n" s;
          exit 2)
  | _ ->
      Printf.eprintf "loadgen: bad --corpus %S (want generated:N:SEED)\n" s;
      exit 2

let () =
  let socket = ref "" in
  let requests = ref 1000 in
  let conns = ref 4 in
  let seed = ref 1 in
  let benchmarks = ref None in
  let inline = ref [] in
  let json_out = ref None in
  let spec =
    [
      ("--socket", Arg.Set_string socket, "PATH daemon socket (required)");
      ("--requests", Arg.Set_int requests, "N requests to issue (default 1000)");
      ("--conns", Arg.Set_int conns, "N concurrent client domains (default 4)");
      ("--seed", Arg.Set_int seed, "N corpus-draw seed (default 1)");
      ( "--benchmarks",
        Arg.String
          (fun s ->
            benchmarks :=
              Some (List.filter (fun x -> x <> "") (String.split_on_char ',' s))),
        "A,B,C corpus benchmarks (default crc32,bitcount,stringsearch)" );
      ( "--corpus",
        Arg.String (fun s -> inline := parse_corpus s),
        "generated:N:SEED draw from N seeded workgen programs, shipped \
         inline, instead of only the named benchmarks" );
      ( "--json",
        Arg.String (fun s -> json_out := Some s),
        "PATH write the result record as JSON (atomic)" );
    ]
  in
  Arg.parse spec
    (fun a ->
      Printf.eprintf "loadgen: unexpected argument %S\n%s\n" a usage;
      exit 2)
    usage;
  if !socket = "" then begin
    Printf.eprintf "loadgen: --socket is required\n%s\n" usage;
    exit 2
  end;
  match
    Pf_serve.Loadgen.run ?benchmarks:!benchmarks ~inline:!inline
      ~socket:!socket ~requests:!requests ~conns:!conns ~seed:!seed ()
  with
  | exception Pf_util.Sim_error.Error e ->
      Printf.eprintf "loadgen: %s\n" (Pf_util.Sim_error.to_string e);
      exit 4
  | r ->
      print_endline (Pf_serve.Loadgen.summary r);
      Option.iter
        (fun path ->
          Pf_util.Atomic_file.write ~path
            (Pf_serve.Json.to_string (Pf_serve.Loadgen.to_json r) ^ "\n");
          Printf.eprintf "loadgen: wrote %s\n" path)
        !json_out;
      if r.Pf_serve.Loadgen.errors > 0 then exit 4
